file(REMOVE_RECURSE
  "CMakeFiles/mpmd_coupled.dir/mpmd_coupled.cpp.o"
  "CMakeFiles/mpmd_coupled.dir/mpmd_coupled.cpp.o.d"
  "mpmd_coupled"
  "mpmd_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpmd_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
