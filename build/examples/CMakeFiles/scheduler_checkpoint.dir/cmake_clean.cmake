file(REMOVE_RECURSE
  "CMakeFiles/scheduler_checkpoint.dir/scheduler_checkpoint.cpp.o"
  "CMakeFiles/scheduler_checkpoint.dir/scheduler_checkpoint.cpp.o.d"
  "scheduler_checkpoint"
  "scheduler_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
