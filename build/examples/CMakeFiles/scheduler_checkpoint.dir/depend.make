# Empty dependencies file for scheduler_checkpoint.
# This may be replaced when dependencies are built.
