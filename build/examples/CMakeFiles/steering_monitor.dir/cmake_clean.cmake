file(REMOVE_RECURSE
  "CMakeFiles/steering_monitor.dir/steering_monitor.cpp.o"
  "CMakeFiles/steering_monitor.dir/steering_monitor.cpp.o.d"
  "steering_monitor"
  "steering_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
