# Empty compiler generated dependencies file for steering_monitor.
# This may be replaced when dependencies are built.
