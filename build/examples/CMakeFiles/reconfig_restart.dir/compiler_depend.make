# Empty compiler generated dependencies file for reconfig_restart.
# This may be replaced when dependencies are built.
