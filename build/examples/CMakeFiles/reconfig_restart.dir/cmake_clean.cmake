file(REMOVE_RECURSE
  "CMakeFiles/reconfig_restart.dir/reconfig_restart.cpp.o"
  "CMakeFiles/reconfig_restart.dir/reconfig_restart.cpp.o.d"
  "reconfig_restart"
  "reconfig_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
