file(REMOVE_RECURSE
  "CMakeFiles/drms_tool.dir/drms_tool.cpp.o"
  "CMakeFiles/drms_tool.dir/drms_tool.cpp.o.d"
  "drms_tool"
  "drms_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
