# Empty compiler generated dependencies file for drms_tool.
# This may be replaced when dependencies are built.
