# Empty compiler generated dependencies file for test_local_array.
# This may be replaced when dependencies are built.
