file(REMOVE_RECURSE
  "CMakeFiles/test_local_array.dir/test_local_array.cpp.o"
  "CMakeFiles/test_local_array.dir/test_local_array.cpp.o.d"
  "test_local_array"
  "test_local_array.pdb"
  "test_local_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
