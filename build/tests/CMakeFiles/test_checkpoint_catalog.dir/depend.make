# Empty dependencies file for test_checkpoint_catalog.
# This may be replaced when dependencies are built.
