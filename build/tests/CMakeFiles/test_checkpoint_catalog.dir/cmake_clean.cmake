file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_catalog.dir/test_checkpoint_catalog.cpp.o"
  "CMakeFiles/test_checkpoint_catalog.dir/test_checkpoint_catalog.cpp.o.d"
  "test_checkpoint_catalog"
  "test_checkpoint_catalog.pdb"
  "test_checkpoint_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
