# Empty dependencies file for test_streamer.
# This may be replaced when dependencies are built.
