file(REMOVE_RECURSE
  "CMakeFiles/test_streamer.dir/test_streamer.cpp.o"
  "CMakeFiles/test_streamer.dir/test_streamer.cpp.o.d"
  "test_streamer"
  "test_streamer.pdb"
  "test_streamer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streamer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
