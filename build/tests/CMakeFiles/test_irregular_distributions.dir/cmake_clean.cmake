file(REMOVE_RECURSE
  "CMakeFiles/test_irregular_distributions.dir/test_irregular_distributions.cpp.o"
  "CMakeFiles/test_irregular_distributions.dir/test_irregular_distributions.cpp.o.d"
  "test_irregular_distributions"
  "test_irregular_distributions.pdb"
  "test_irregular_distributions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irregular_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
