# Empty compiler generated dependencies file for test_piofs.
# This may be replaced when dependencies are built.
