file(REMOVE_RECURSE
  "CMakeFiles/test_piofs.dir/test_piofs.cpp.o"
  "CMakeFiles/test_piofs.dir/test_piofs.cpp.o.d"
  "test_piofs"
  "test_piofs.pdb"
  "test_piofs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
