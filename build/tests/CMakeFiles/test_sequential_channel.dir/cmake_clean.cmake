file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_channel.dir/test_sequential_channel.cpp.o"
  "CMakeFiles/test_sequential_channel.dir/test_sequential_channel.cpp.o.d"
  "test_sequential_channel"
  "test_sequential_channel.pdb"
  "test_sequential_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
