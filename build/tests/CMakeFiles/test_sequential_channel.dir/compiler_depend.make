# Empty compiler generated dependencies file for test_sequential_channel.
# This may be replaced when dependencies are built.
