
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_range.cpp" "tests/CMakeFiles/test_range.dir/test_range.cpp.o" "gcc" "tests/CMakeFiles/test_range.dir/test_range.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/drms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/drms_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/piofs/CMakeFiles/drms_piofs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/drms_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/drms_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
