file(REMOVE_RECURSE
  "CMakeFiles/test_mpmd.dir/test_mpmd.cpp.o"
  "CMakeFiles/test_mpmd.dir/test_mpmd.cpp.o.d"
  "test_mpmd"
  "test_mpmd.pdb"
  "test_mpmd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
