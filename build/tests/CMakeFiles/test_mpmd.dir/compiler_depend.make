# Empty compiler generated dependencies file for test_mpmd.
# This may be replaced when dependencies are built.
