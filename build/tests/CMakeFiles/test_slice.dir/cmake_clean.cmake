file(REMOVE_RECURSE
  "CMakeFiles/test_slice.dir/test_slice.cpp.o"
  "CMakeFiles/test_slice.dir/test_slice.cpp.o.d"
  "test_slice"
  "test_slice.pdb"
  "test_slice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
