file(REMOVE_RECURSE
  "CMakeFiles/test_dist_spec.dir/test_dist_spec.cpp.o"
  "CMakeFiles/test_dist_spec.dir/test_dist_spec.cpp.o.d"
  "test_dist_spec"
  "test_dist_spec.pdb"
  "test_dist_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
