# Empty compiler generated dependencies file for test_dist_spec.
# This may be replaced when dependencies are built.
