file(REMOVE_RECURSE
  "CMakeFiles/test_redistribute.dir/test_redistribute.cpp.o"
  "CMakeFiles/test_redistribute.dir/test_redistribute.cpp.o.d"
  "test_redistribute"
  "test_redistribute.pdb"
  "test_redistribute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redistribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
