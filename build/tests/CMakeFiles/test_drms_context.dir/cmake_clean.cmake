file(REMOVE_RECURSE
  "CMakeFiles/test_drms_context.dir/test_drms_context.cpp.o"
  "CMakeFiles/test_drms_context.dir/test_drms_context.cpp.o.d"
  "test_drms_context"
  "test_drms_context.pdb"
  "test_drms_context[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drms_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
