# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_piofs[1]_include.cmake")
include("/root/repo/build/tests/test_range[1]_include.cmake")
include("/root/repo/build/tests/test_slice[1]_include.cmake")
include("/root/repo/build/tests/test_dist_spec[1]_include.cmake")
include("/root/repo/build/tests/test_local_array[1]_include.cmake")
include("/root/repo/build/tests/test_redistribute[1]_include.cmake")
include("/root/repo/build/tests/test_streamer[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_drms_context[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_sequential_channel[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_mpmd[1]_include.cmake")
include("/root/repo/build/tests/test_irregular_distributions[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_steering[1]_include.cmake")
include("/root/repo/build/tests/test_capi[1]_include.cmake")
