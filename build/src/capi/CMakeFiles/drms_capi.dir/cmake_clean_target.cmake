file(REMOVE_RECURSE
  "libdrms_capi.a"
)
