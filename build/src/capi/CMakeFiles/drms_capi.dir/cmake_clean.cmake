file(REMOVE_RECURSE
  "CMakeFiles/drms_capi.dir/drms_c.cpp.o"
  "CMakeFiles/drms_capi.dir/drms_c.cpp.o.d"
  "libdrms_capi.a"
  "libdrms_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
