# Empty compiler generated dependencies file for drms_capi.
# This may be replaced when dependencies are built.
