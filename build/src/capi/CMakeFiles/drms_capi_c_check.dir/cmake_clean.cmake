file(REMOVE_RECURSE
  "CMakeFiles/drms_capi_c_check.dir/c_header_check.c.o"
  "CMakeFiles/drms_capi_c_check.dir/c_header_check.c.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/drms_capi_c_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
