# Empty compiler generated dependencies file for drms_capi_c_check.
# This may be replaced when dependencies are built.
