# Empty compiler generated dependencies file for drms_arch.
# This may be replaced when dependencies are built.
