file(REMOVE_RECURSE
  "libdrms_arch.a"
)
