file(REMOVE_RECURSE
  "CMakeFiles/drms_arch.dir/cluster.cpp.o"
  "CMakeFiles/drms_arch.dir/cluster.cpp.o.d"
  "CMakeFiles/drms_arch.dir/events.cpp.o"
  "CMakeFiles/drms_arch.dir/events.cpp.o.d"
  "CMakeFiles/drms_arch.dir/scheduler.cpp.o"
  "CMakeFiles/drms_arch.dir/scheduler.cpp.o.d"
  "CMakeFiles/drms_arch.dir/uic.cpp.o"
  "CMakeFiles/drms_arch.dir/uic.cpp.o.d"
  "libdrms_arch.a"
  "libdrms_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
