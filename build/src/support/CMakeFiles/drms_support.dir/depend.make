# Empty dependencies file for drms_support.
# This may be replaced when dependencies are built.
