file(REMOVE_RECURSE
  "CMakeFiles/drms_support.dir/byte_buffer.cpp.o"
  "CMakeFiles/drms_support.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/drms_support.dir/crc32.cpp.o"
  "CMakeFiles/drms_support.dir/crc32.cpp.o.d"
  "CMakeFiles/drms_support.dir/error.cpp.o"
  "CMakeFiles/drms_support.dir/error.cpp.o.d"
  "CMakeFiles/drms_support.dir/log.cpp.o"
  "CMakeFiles/drms_support.dir/log.cpp.o.d"
  "CMakeFiles/drms_support.dir/rng.cpp.o"
  "CMakeFiles/drms_support.dir/rng.cpp.o.d"
  "CMakeFiles/drms_support.dir/stats.cpp.o"
  "CMakeFiles/drms_support.dir/stats.cpp.o.d"
  "CMakeFiles/drms_support.dir/table.cpp.o"
  "CMakeFiles/drms_support.dir/table.cpp.o.d"
  "CMakeFiles/drms_support.dir/units.cpp.o"
  "CMakeFiles/drms_support.dir/units.cpp.o.d"
  "libdrms_support.a"
  "libdrms_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
