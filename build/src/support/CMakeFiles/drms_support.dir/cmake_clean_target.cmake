file(REMOVE_RECURSE
  "libdrms_support.a"
)
