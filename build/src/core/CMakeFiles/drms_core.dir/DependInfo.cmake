
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/array_fingerprint.cpp" "src/core/CMakeFiles/drms_core.dir/array_fingerprint.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/array_fingerprint.cpp.o.d"
  "/root/repo/src/core/checkpoint_catalog.cpp" "src/core/CMakeFiles/drms_core.dir/checkpoint_catalog.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/checkpoint_catalog.cpp.o.d"
  "/root/repo/src/core/checkpoint_format.cpp" "src/core/CMakeFiles/drms_core.dir/checkpoint_format.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/checkpoint_format.cpp.o.d"
  "/root/repo/src/core/dist_array.cpp" "src/core/CMakeFiles/drms_core.dir/dist_array.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/dist_array.cpp.o.d"
  "/root/repo/src/core/dist_spec.cpp" "src/core/CMakeFiles/drms_core.dir/dist_spec.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/dist_spec.cpp.o.d"
  "/root/repo/src/core/drms_checkpoint.cpp" "src/core/CMakeFiles/drms_core.dir/drms_checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/drms_checkpoint.cpp.o.d"
  "/root/repo/src/core/drms_context.cpp" "src/core/CMakeFiles/drms_core.dir/drms_context.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/drms_context.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "src/core/CMakeFiles/drms_core.dir/exchange.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/exchange.cpp.o.d"
  "/root/repo/src/core/local_array.cpp" "src/core/CMakeFiles/drms_core.dir/local_array.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/local_array.cpp.o.d"
  "/root/repo/src/core/mpmd.cpp" "src/core/CMakeFiles/drms_core.dir/mpmd.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/mpmd.cpp.o.d"
  "/root/repo/src/core/range.cpp" "src/core/CMakeFiles/drms_core.dir/range.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/range.cpp.o.d"
  "/root/repo/src/core/redistribute.cpp" "src/core/CMakeFiles/drms_core.dir/redistribute.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/redistribute.cpp.o.d"
  "/root/repo/src/core/replicated_store.cpp" "src/core/CMakeFiles/drms_core.dir/replicated_store.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/replicated_store.cpp.o.d"
  "/root/repo/src/core/sequential_channel.cpp" "src/core/CMakeFiles/drms_core.dir/sequential_channel.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/sequential_channel.cpp.o.d"
  "/root/repo/src/core/slice.cpp" "src/core/CMakeFiles/drms_core.dir/slice.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/slice.cpp.o.d"
  "/root/repo/src/core/spmd_checkpoint.cpp" "src/core/CMakeFiles/drms_core.dir/spmd_checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/spmd_checkpoint.cpp.o.d"
  "/root/repo/src/core/steering.cpp" "src/core/CMakeFiles/drms_core.dir/steering.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/steering.cpp.o.d"
  "/root/repo/src/core/streamer.cpp" "src/core/CMakeFiles/drms_core.dir/streamer.cpp.o" "gcc" "src/core/CMakeFiles/drms_core.dir/streamer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/drms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/drms_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/piofs/CMakeFiles/drms_piofs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
