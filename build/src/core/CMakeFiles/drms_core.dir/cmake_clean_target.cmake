file(REMOVE_RECURSE
  "libdrms_core.a"
)
