# Empty dependencies file for drms_core.
# This may be replaced when dependencies are built.
