file(REMOVE_RECURSE
  "libdrms_sim.a"
)
