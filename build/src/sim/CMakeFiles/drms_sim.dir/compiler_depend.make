# Empty compiler generated dependencies file for drms_sim.
# This may be replaced when dependencies are built.
