file(REMOVE_RECURSE
  "CMakeFiles/drms_sim.dir/clock.cpp.o"
  "CMakeFiles/drms_sim.dir/clock.cpp.o.d"
  "CMakeFiles/drms_sim.dir/cost_model.cpp.o"
  "CMakeFiles/drms_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/drms_sim.dir/machine.cpp.o"
  "CMakeFiles/drms_sim.dir/machine.cpp.o.d"
  "libdrms_sim.a"
  "libdrms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
