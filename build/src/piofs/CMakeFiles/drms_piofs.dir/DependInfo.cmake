
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/piofs/extent_file.cpp" "src/piofs/CMakeFiles/drms_piofs.dir/extent_file.cpp.o" "gcc" "src/piofs/CMakeFiles/drms_piofs.dir/extent_file.cpp.o.d"
  "/root/repo/src/piofs/volume.cpp" "src/piofs/CMakeFiles/drms_piofs.dir/volume.cpp.o" "gcc" "src/piofs/CMakeFiles/drms_piofs.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/drms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
