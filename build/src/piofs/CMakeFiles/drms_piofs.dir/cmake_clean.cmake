file(REMOVE_RECURSE
  "CMakeFiles/drms_piofs.dir/extent_file.cpp.o"
  "CMakeFiles/drms_piofs.dir/extent_file.cpp.o.d"
  "CMakeFiles/drms_piofs.dir/volume.cpp.o"
  "CMakeFiles/drms_piofs.dir/volume.cpp.o.d"
  "libdrms_piofs.a"
  "libdrms_piofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_piofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
