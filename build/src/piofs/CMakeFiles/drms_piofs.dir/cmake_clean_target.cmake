file(REMOVE_RECURSE
  "libdrms_piofs.a"
)
