# Empty compiler generated dependencies file for drms_piofs.
# This may be replaced when dependencies are built.
