# Empty dependencies file for drms_rt.
# This may be replaced when dependencies are built.
