file(REMOVE_RECURSE
  "CMakeFiles/drms_rt.dir/barrier.cpp.o"
  "CMakeFiles/drms_rt.dir/barrier.cpp.o.d"
  "CMakeFiles/drms_rt.dir/collectives.cpp.o"
  "CMakeFiles/drms_rt.dir/collectives.cpp.o.d"
  "CMakeFiles/drms_rt.dir/mailbox.cpp.o"
  "CMakeFiles/drms_rt.dir/mailbox.cpp.o.d"
  "CMakeFiles/drms_rt.dir/task_context.cpp.o"
  "CMakeFiles/drms_rt.dir/task_context.cpp.o.d"
  "CMakeFiles/drms_rt.dir/task_group.cpp.o"
  "CMakeFiles/drms_rt.dir/task_group.cpp.o.d"
  "libdrms_rt.a"
  "libdrms_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
