
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/barrier.cpp" "src/rt/CMakeFiles/drms_rt.dir/barrier.cpp.o" "gcc" "src/rt/CMakeFiles/drms_rt.dir/barrier.cpp.o.d"
  "/root/repo/src/rt/collectives.cpp" "src/rt/CMakeFiles/drms_rt.dir/collectives.cpp.o" "gcc" "src/rt/CMakeFiles/drms_rt.dir/collectives.cpp.o.d"
  "/root/repo/src/rt/mailbox.cpp" "src/rt/CMakeFiles/drms_rt.dir/mailbox.cpp.o" "gcc" "src/rt/CMakeFiles/drms_rt.dir/mailbox.cpp.o.d"
  "/root/repo/src/rt/task_context.cpp" "src/rt/CMakeFiles/drms_rt.dir/task_context.cpp.o" "gcc" "src/rt/CMakeFiles/drms_rt.dir/task_context.cpp.o.d"
  "/root/repo/src/rt/task_group.cpp" "src/rt/CMakeFiles/drms_rt.dir/task_group.cpp.o" "gcc" "src/rt/CMakeFiles/drms_rt.dir/task_group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/drms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
