file(REMOVE_RECURSE
  "libdrms_rt.a"
)
