file(REMOVE_RECURSE
  "CMakeFiles/drms_apps.dir/app_spec.cpp.o"
  "CMakeFiles/drms_apps.dir/app_spec.cpp.o.d"
  "CMakeFiles/drms_apps.dir/solver.cpp.o"
  "CMakeFiles/drms_apps.dir/solver.cpp.o.d"
  "libdrms_apps.a"
  "libdrms_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
