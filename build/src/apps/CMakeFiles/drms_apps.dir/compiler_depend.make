# Empty compiler generated dependencies file for drms_apps.
# This may be replaced when dependencies are built.
