file(REMOVE_RECURSE
  "libdrms_apps.a"
)
