// Trace-invariant tests for the deterministic observability layer
// (drms::obs). The assertions follow the determinism contract from
// recorder.hpp: ordering invariants — manifest-last, decommit-first,
// pipeline overlap — are checked against global sequence numbers (which
// are deterministic across barriers and joins), never against the host
// wall clock. Also here: the seeded property test that round-trips a
// checkpoint through a reconfigured restore and checks, from the trace,
// that every array byte is written exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/checkpoint_format.hpp"
#include "core/drms_checkpoint.hpp"
#include "core/drms_context.hpp"
#include "core/spmd_checkpoint.hpp"
#include "core/streamer.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "rt/task_group.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/memory_backend.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms;
using core::AppSegmentModel;
using core::CheckpointMode;
using core::DistArray;
using core::DistSpec;
using core::Index;
using rt::TaskContext;
using rt::TaskGroup;
using test::count_mapped_mismatches;
using test::cube;
using test::fill_assigned_tagged;
using test::placement_of;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 4 * 1024;
  m.system_bytes = 4 * 1024;
  return m;
}

/// One full checkpoint through the public engine API with a recorder
/// attached (the storage itself may additionally be instrumented).
void run_checkpoint(store::StorageBackend& storage, CheckpointMode mode,
                    const std::string& prefix, int tasks, Index n,
                    obs::Recorder* recorder,
                    std::uint64_t chunk_bytes = 4096) {
  TaskGroup group(placement_of(tasks));
  DistArray array("u", cube(n), sizeof(double), tasks);
  const auto outcome = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(cube(n), tasks, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    std::int64_t it = 7;
    core::ReplicatedStore store;
    store.register_i64("it", &it);
    const std::array<DistArray*, 1> arrays{&array};
    if (mode == CheckpointMode::kDrms) {
      core::DrmsCheckpoint engine(storage, {}, /*io_tasks=*/0, chunk_bytes,
                                  /*jitter=*/false, recorder);
      (void)engine.write(ctx, prefix, "obs", 1, store, arrays,
                         tiny_segment());
    } else {
      core::SpmdCheckpoint engine(storage, {}, /*jitter=*/false, recorder);
      (void)engine.write(ctx, prefix, "obs", 1, store, arrays,
                         tiny_segment());
    }
  });
  ASSERT_TRUE(outcome.completed) << outcome.kill_reason;
}

bool is_mutation_op(const std::string& name) {
  return name == "create" || name == "remove" || name == "remove_prefix" ||
         name == "write_at" || name == "write_zeros_at" || name == "append";
}

std::string attr_text(const obs::SpanRecord& span, std::string_view key) {
  const obs::Attr* a = span.attr(key);
  return (a != nullptr && !a->numeric) ? a->text : std::string();
}

// ---- Recorder unit tests ----------------------------------------------------

TEST(ObsRecorder, SpansCarrySequenceClocksAndAttrs) {
  obs::Recorder rec;
  const std::size_t id = rec.begin_span(
      "cat", "outer", 3, 1.5,
      {obs::Attr::num("k", 42), obs::Attr::str("s", "v")});
  rec.instant("cat", "evt", -1, -1.0);
  rec.end_span(id, 3.0);

  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  const obs::SpanRecord& outer = spans[0];
  const obs::SpanRecord& evt = spans[1];

  // Sequence numbers form a total order over begin/end events.
  EXPECT_EQ(outer.begin_seq, 0u);
  EXPECT_EQ(evt.begin_seq, 1u);
  EXPECT_EQ(outer.end_seq, 2u);
  EXPECT_TRUE(outer.closed);
  EXPECT_EQ(outer.rank, 3);
  EXPECT_DOUBLE_EQ(outer.begin_sim, 1.5);
  EXPECT_DOUBLE_EQ(outer.end_sim, 3.0);
  EXPECT_LE(outer.begin_wall_ns, outer.end_wall_ns);
  EXPECT_EQ(outer.attr_num("k"), 42);
  EXPECT_EQ(outer.attr_num("missing", -5), -5);
  ASSERT_NE(outer.attr("s"), nullptr);
  EXPECT_EQ(outer.attr("s")->text, "v");

  // An instant is born closed, with begin == end.
  EXPECT_TRUE(evt.closed);
  EXPECT_EQ(evt.begin_seq, evt.end_seq);
  EXPECT_EQ(evt.rank, -1);
}

TEST(ObsRecorder, EndSpanIsIdempotentAndBoundsChecked) {
  obs::Recorder rec;
  const std::size_t id = rec.begin_span("c", "n", 0, 0.0);
  rec.end_span(id, 1.0);
  const std::uint64_t end_seq = rec.spans()[0].end_seq;
  rec.end_span(id, 2.0);                 // already closed: no effect
  rec.end_span(obs::kNoSpan, 1.0);       // out of range: no effect
  EXPECT_EQ(rec.spans()[0].end_seq, end_seq);
  EXPECT_DOUBLE_EQ(rec.spans()[0].end_sim, 1.0);
  EXPECT_EQ(rec.span_count(), 1u);
}

TEST(ObsRecorder, CountersAccumulate) {
  obs::Recorder rec;
  EXPECT_EQ(rec.counter("a"), 0u);
  rec.count("a");
  rec.count("a", 4);
  rec.count("b", 2);
  EXPECT_EQ(rec.counter("a"), 5u);
  const auto counters = rec.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.at("b"), 2u);
}

TEST(ObsRecorder, HistogramLog2Buckets) {
  obs::Histogram h;
  h.add(0);
  h.add(1);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 1028u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 2u);   // 0 and 1
  EXPECT_EQ(h.buckets[1], 1u);   // 2 <= 3 < 4
  EXPECT_EQ(h.buckets[10], 1u);  // 1024

  obs::Recorder rec;
  rec.record_ns("lat", 100);
  rec.record_ns("lat", 200);
  const auto histograms = rec.histograms();
  ASSERT_EQ(histograms.count("lat"), 1u);
  EXPECT_EQ(histograms.at("lat").count, 2u);
}

TEST(ObsRecorder, ScopedSpanNullRecorderIsNoop) {
  {
    obs::ScopedSpan span(nullptr, "c", "n", 0, 0.0);
    span.end(1.0);
  }
  obs::Recorder rec;
  {
    obs::ScopedSpan span(&rec, "c", "n", 0, 0.0);
    // Destructor closes the span with unknown sim time.
  }
  ASSERT_EQ(rec.span_count(), 1u);
  EXPECT_TRUE(rec.spans()[0].closed);
  EXPECT_DOUBLE_EQ(rec.spans()[0].end_sim, -1.0);

  // Moving transfers ownership: only one close happens.
  obs::ScopedSpan a(&rec, "c", "m", 0, 0.0);
  obs::ScopedSpan b(std::move(a));
  b.end(5.0);
  EXPECT_DOUBLE_EQ(rec.spans()[1].end_sim, 5.0);
}

TEST(ObsRecorder, RetryObserverCountsTotalAndPerSite) {
  obs::Recorder rec;
  rec.on_transient_retry("meta.write", 1);
  rec.on_transient_retry("meta.write", 2);
  rec.on_transient_retry("segment.write", 1);
  EXPECT_EQ(rec.counter("retry.transient"), 3u);
  EXPECT_EQ(rec.counter("retry.transient.meta.write"), 2u);
  EXPECT_EQ(rec.counter("retry.transient.segment.write"), 1u);
}

// ---- Export -----------------------------------------------------------------

TEST(ObsExport, ChromeTraceCarriesSpansSeqAndEscapedAttrs) {
  obs::Recorder rec;
  const std::size_t id = rec.begin_span(
      "ckpt", "write", 2, 0.25, {obs::Attr::str("prefix", "a\"b\nc")});
  rec.end_span(id, 0.5);
  rec.instant("store", "write_at", -1, -1.0,
              {obs::Attr::num("bytes", 64)});

  const std::string json = obs::chrome_trace_json(rec);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"write\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ckpt\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  // Rank-less store events land on the dedicated store tid.
  EXPECT_NE(json.find("\"tid\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(json.find("\"sim_begin_s\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
  // Control characters and quotes inside attribute values are escaped.
  EXPECT_NE(json.find("a\\\"b\\nc"), std::string::npos);
  // Unknown sim times are omitted, not emitted as -1.
  EXPECT_EQ(json.find("\"sim_begin_s\":-1"), std::string::npos);
}

TEST(ObsExport, StatsTableListsCountersAndHistograms) {
  obs::Recorder rec;
  EXPECT_EQ(obs::stats_table(rec), "no recorded metrics\n");
  rec.count("store.mem.write_at.ops", 3);
  rec.record_ns("store.mem.write_at.ns", 500);
  const std::string table = obs::stats_table(rec);
  EXPECT_NE(table.find("store.mem.write_at.ops"), std::string::npos);
  EXPECT_NE(table.find("store.mem.write_at.ns"), std::string::npos);
  EXPECT_NE(table.find("3"), std::string::npos);
  EXPECT_NE(table.find("500"), std::string::npos);
}

// ---- InstrumentedBackend ----------------------------------------------------

TEST(ObsBackend, RecordsOpsBytesAndMutations) {
  store::MemoryBackend inner;
  obs::Recorder rec;
  obs::InstrumentedBackend backend(inner, &rec, "mem");
  EXPECT_EQ(backend.description(), "obs(" + inner.description() + ")");

  std::vector<std::byte> data(64, std::byte{0x5a});
  store::FileHandle f = backend.create("x");
  f.write_at(0, data);
  f.append(data);
  const store::FileHandle g = backend.open("x");
  EXPECT_EQ(g.read_at(0, 64), data);  // contents pass through unchanged
  backend.remove("x");

  EXPECT_EQ(rec.counter("store.mem.create.ops"), 1u);
  EXPECT_EQ(rec.counter("store.mem.write_at.ops"), 1u);
  EXPECT_EQ(rec.counter("store.mem.write_at.bytes"), 64u);
  EXPECT_EQ(rec.counter("store.mem.append.ops"), 1u);
  EXPECT_EQ(rec.counter("store.mem.open.ops"), 1u);
  EXPECT_EQ(rec.counter("store.mem.read_at.ops"), 1u);
  EXPECT_EQ(rec.counter("store.mem.read_at.bytes"), 64u);
  EXPECT_EQ(rec.counter("store.mem.remove.ops"), 1u);
  // create + write_at + append + remove; open/read are not mutations.
  EXPECT_EQ(rec.counter("store.mutation"), 4u);
  EXPECT_EQ(rec.histograms().count("store.mem.write_at.ns"), 1u);

  // The write_at event carries the file name, offset and size.
  bool found = false;
  for (const auto& span : rec.spans()) {
    if (span.category == "store" && span.name == "write_at") {
      EXPECT_EQ(attr_text(span, "file"), "x");
      EXPECT_EQ(span.attr_num("offset"), 0);
      EXPECT_EQ(span.attr_num("bytes"), 64);
      EXPECT_EQ(span.rank, -1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsBackend, NullRecorderPassesThrough) {
  store::MemoryBackend inner;
  obs::InstrumentedBackend backend(inner, nullptr, "mem");
  std::vector<std::byte> data(16, std::byte{0x11});
  backend.create("y").write_at(0, data);
  EXPECT_EQ(backend.open("y").read_at(0, 16), data);
  EXPECT_EQ(backend.file_size("y"), 16u);
  EXPECT_TRUE(inner.exists("y"));
}

// ---- Engine ordering invariants ---------------------------------------------

/// Checkpoint the same prefix twice through an instrumented store and
/// check the two-phase-commit trace invariants: in every attempt the
/// commit-manifest write is the final mutation, and in the overwrite
/// attempt the decommit (manifest removal) precedes every data write.
void check_commit_protocol_trace(CheckpointMode mode) {
  store::MemoryBackend inner;
  obs::Recorder rec;
  obs::InstrumentedBackend storage(inner, &rec, "mem");
  const std::string commit = core::commit_file_name("inv");

  run_checkpoint(storage, mode, "inv", 2, 6, &rec);
  const std::size_t attempt2_begin = rec.span_count();
  run_checkpoint(storage, mode, "inv", 2, 6, &rec);

  const auto spans = rec.spans();
  // Attempt boundaries: spans are indexed in begin order, and attempt 1
  // fully completes before attempt 2 starts.
  const auto mutation_events =
      [&](std::size_t lo, std::size_t hi) {
        std::vector<const obs::SpanRecord*> out;
        for (std::size_t i = lo; i < hi; ++i) {
          if (spans[i].category == "store" &&
              is_mutation_op(spans[i].name)) {
            out.push_back(&spans[i]);
          }
        }
        return out;
      };

  const auto attempt1 = mutation_events(0, attempt2_begin);
  const auto attempt2 = mutation_events(attempt2_begin, spans.size());
  ASSERT_FALSE(attempt1.empty());
  ASSERT_FALSE(attempt2.empty());

  // Manifest-last: in both attempts the mutation with the highest
  // sequence number is the write of the commit manifest.
  for (const auto* attempt : {&attempt1, &attempt2}) {
    const obs::SpanRecord* last = attempt->front();
    for (const auto* e : *attempt) {
      if (e->begin_seq > last->begin_seq) {
        last = e;
      }
    }
    EXPECT_EQ(last->name, "write_at");
    EXPECT_EQ(attr_text(*last, "file"), commit);
  }

  // A fresh prefix has nothing to decommit: no removes in attempt 1.
  for (const auto* e : attempt1) {
    EXPECT_NE(e->name, "remove") << attr_text(*e, "file");
  }

  // Decommit-first: the overwrite's FIRST mutation (lowest seq) is the
  // removal of the previous manifest — before any data write can tear
  // the committed state.
  const obs::SpanRecord* first = attempt2.front();
  for (const auto* e : attempt2) {
    if (e->begin_seq < first->begin_seq) {
      first = e;
    }
  }
  EXPECT_EQ(first->name, "remove");
  EXPECT_EQ(attr_text(*first, "file"), commit);

  // The engine-level phase spans are present and closed.
  const std::string cat = mode == CheckpointMode::kDrms ? "ckpt" : "spmd";
  for (const char* name : {"write", "segment", "meta", "commit"}) {
    const bool present = std::any_of(
        spans.begin(), spans.end(), [&](const obs::SpanRecord& s) {
          return s.category == cat && s.name == name && s.closed;
        });
    EXPECT_TRUE(present) << cat << "." << name;
  }
  // ...and "decommit" appears in the overwrite attempt.
  const bool decommit_span = std::any_of(
      spans.begin() + static_cast<std::ptrdiff_t>(attempt2_begin),
      spans.end(), [&](const obs::SpanRecord& s) {
        return s.category == cat && s.name == "decommit" && s.closed;
      });
  EXPECT_TRUE(decommit_span);
}

TEST(ObsInvariants, ManifestLastAndDecommitFirstDrms) {
  check_commit_protocol_trace(CheckpointMode::kDrms);
}

TEST(ObsInvariants, ManifestLastAndDecommitFirstSpmd) {
  check_commit_protocol_trace(CheckpointMode::kSpmd);
}

// ---- Pipelined streamer overlap ---------------------------------------------

/// PR 3's double-buffered pipelining, made visible by the trace: round
/// r+1's exchange span OPENS (begin_seq) before round r's in-flight I/O
/// span CLOSES (end_seq) — both recorded by the main task thread, so the
/// ordering is deterministic. A sequential streamer could never produce
/// this interleaving.
TEST(ObsPipeline, NextRoundExchangeOpensBeforeInflightWriteCloses) {
  constexpr int kTasks = 2;
  constexpr Index kN = 16;  // 16^3 doubles / 4 KiB chunks -> 8 chunks
  store::MemoryBackend backend;
  obs::Recorder rec;
  TaskGroup group(placement_of(kTasks));
  DistArray array("u", cube(kN), sizeof(double), kTasks);
  store::FileHandle file = backend.create("stream.u");

  const auto outcome = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(DistSpec::block_auto(
          cube(kN), kTasks, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();
    const core::ArrayStreamer streamer(nullptr, {}, /*chunk=*/4096,
                                       /*jitter=*/false, &rec);
    std::uint32_t crc = 0;
    streamer.write_section(ctx, array, array.global_box(), file, 0, kTasks,
                           &crc);
  });
  ASSERT_TRUE(outcome.completed) << outcome.kill_reason;

  const auto spans = rec.spans();
  int overlapping_pairs = 0;
  for (const auto& inflight : spans) {
    if (inflight.category != "stream" ||
        inflight.name != "write_inflight") {
      continue;
    }
    ASSERT_TRUE(inflight.closed);
    for (const auto& exchange : spans) {
      if (exchange.category == "stream" && exchange.name == "exchange" &&
          exchange.rank == inflight.rank &&
          attr_text(exchange, "dir") == "write" &&
          exchange.attr_num("round") == inflight.attr_num("round") + 1) {
        EXPECT_LT(exchange.begin_seq, inflight.end_seq)
            << "rank " << inflight.rank << " round "
            << inflight.attr_num("round");
        ++overlapping_pairs;
      }
    }
  }
  // 8 chunks / 2 I/O tasks = 4 rounds: at least rounds 0..2 of each rank
  // have a successor-round exchange.
  EXPECT_GE(overlapping_pairs, 2 * kTasks);
}

TEST(ObsPipeline, NextRoundReadOpensBeforeExchangeCloses) {
  constexpr int kTasks = 2;
  constexpr Index kN = 16;
  store::MemoryBackend backend;
  store::FileHandle file = backend.create("stream.u");
  DistArray src("u", cube(kN), sizeof(double), kTasks);
  {
    TaskGroup group(placement_of(kTasks));
    const auto outcome = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        src.install_distribution(DistSpec::block_auto(
            cube(kN), kTasks, std::vector<Index>(3, 0)));
      }
      ctx.barrier();
      fill_assigned_tagged(src, ctx.rank());
      ctx.barrier();
      const core::ArrayStreamer streamer(nullptr, {}, 4096);
      streamer.write_section(ctx, src, src.global_box(), file, 0, kTasks);
    });
    ASSERT_TRUE(outcome.completed) << outcome.kill_reason;
  }

  obs::Recorder rec;
  DistArray dst("u", cube(kN), sizeof(double), kTasks);
  TaskGroup group(placement_of(kTasks));
  const auto outcome = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      dst.install_distribution(DistSpec::block_auto(
          cube(kN), kTasks, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    const core::ArrayStreamer streamer(nullptr, {}, 4096, false, &rec);
    streamer.read_section(ctx, dst, dst.global_box(), file, 0, kTasks);
  });
  ASSERT_TRUE(outcome.completed) << outcome.kill_reason;

  // The read pipeline prefetches: round r+1's in-flight read is LAUNCHED
  // before round r's exchange span closes.
  const auto spans = rec.spans();
  int overlapping_pairs = 0;
  for (const auto& inflight : spans) {
    if (inflight.category != "stream" || inflight.name != "read_inflight") {
      continue;
    }
    const std::int64_t round = inflight.attr_num("round");
    if (round == 0) {
      continue;  // the first read has no predecessor exchange
    }
    for (const auto& exchange : spans) {
      if (exchange.category == "stream" && exchange.name == "exchange" &&
          exchange.rank == inflight.rank &&
          attr_text(exchange, "dir") == "read" &&
          exchange.attr_num("round") == round - 1) {
        EXPECT_LT(inflight.begin_seq, exchange.end_seq)
            << "rank " << inflight.rank << " round " << round;
        ++overlapping_pairs;
      }
    }
  }
  EXPECT_GE(overlapping_pairs, 2 * kTasks);
}

// ---- Retry counters ---------------------------------------------------------

TEST(ObsRetry, TransientRetryCountersMatchFaultSchedule) {
  for (const CheckpointMode mode :
       {CheckpointMode::kDrms, CheckpointMode::kSpmd}) {
    for (const int faults : {1, 3}) {
      SCOPED_TRACE(std::string(mode == CheckpointMode::kDrms ? "drms"
                                                             : "spmd") +
                   " faults=" + std::to_string(faults));
      store::MemoryBackend inner;
      store::FaultInjectionBackend fault(inner);
      obs::Recorder rec;
      fault.inject_transient_faults(faults);
      run_checkpoint(fault, mode, "rt", 2, 6, &rec);
      EXPECT_EQ(fault.faults_injected(), static_cast<std::uint64_t>(faults));
      // Every injected transient fault surfaces as exactly one observed
      // retry — and each is attributed to a per-site sub-counter.
      EXPECT_EQ(rec.counter("retry.transient"),
                static_cast<std::uint64_t>(faults));
      std::uint64_t per_site = 0;
      for (const auto& [key, value] : rec.counters()) {
        if (key.rfind("retry.transient.", 0) == 0) {
          per_site += value;
        }
      }
      EXPECT_EQ(per_site, static_cast<std::uint64_t>(faults));
    }
  }
}

// ---- Seeded property test ---------------------------------------------------

/// Random (distribution, task-count) pairs round-trip through a
/// reconfigured restore: checkpoint with t1 tasks, restore + re-checkpoint
/// with t2 tasks. The distribution-independent stream CRC must survive
/// the round trip bit-exactly, and the trace must account for every array
/// byte exactly once (contiguous write tiles, no overlap, no gap).
TEST(ObsProperty, ReconfiguredRoundTripKeepsCrcAndTilesEveryByteOnce) {
  std::mt19937_64 rng(20260805);
  for (int iter = 0; iter < 6; ++iter) {
    const Index n = 4 + static_cast<Index>(rng() % 6);
    const int t1 = 1 + static_cast<int>(rng() % 4);
    const int t2 = 1 + static_cast<int>(rng() % 4);
    const Index shadow1 = static_cast<Index>(rng() % 2);
    const Index shadow2 = static_cast<Index>(rng() % 2);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": n=" +
                 std::to_string(n) + " t1=" + std::to_string(t1) +
                 " t2=" + std::to_string(t2) + " shadows=" +
                 std::to_string(shadow1) + "/" + std::to_string(shadow2));

    store::MemoryBackend inner;
    obs::Recorder rec;
    obs::InstrumentedBackend storage(inner, &rec, "mem");

    // Checkpoint with t1 tasks.
    {
      TaskGroup group(placement_of(t1));
      DistArray array("u", cube(n), sizeof(double), t1);
      const auto outcome = group.run([&](TaskContext& ctx) {
        if (ctx.rank() == 0) {
          array.install_distribution(DistSpec::block_auto(
              cube(n), t1, std::vector<Index>(3, shadow1)));
        }
        ctx.barrier();
        fill_assigned_tagged(array, ctx.rank());
        ctx.barrier();
        std::int64_t it = 7;
        core::ReplicatedStore store;
        store.register_i64("it", &it);
        const std::array<DistArray*, 1> arrays{&array};
        core::DrmsCheckpoint engine(storage, {}, 0, /*chunk=*/2048,
                                    false, &rec);
        (void)engine.write(ctx, "prop.a", "prop", 1, store, arrays,
                           tiny_segment());
      });
      ASSERT_TRUE(outcome.completed) << outcome.kill_reason;
    }
    const core::CheckpointMeta meta_a =
        core::read_checkpoint_meta(storage, "prop.a");
    const std::uint64_t stream_bytes = meta_a.array("u").stream_bytes;
    EXPECT_EQ(stream_bytes, static_cast<std::uint64_t>(n) * n * n *
                                sizeof(double));

    // Byte accounting from the trace: the write tiles on the array file
    // cover [0, stream_bytes) exactly once.
    const std::string array_file = core::array_file_name("prop.a", "u");
    std::vector<std::pair<std::int64_t, std::int64_t>> tiles;
    for (const auto& span : rec.spans()) {
      if (span.category == "store" && span.name == "write_at" &&
          attr_text(span, "file") == array_file) {
        tiles.emplace_back(span.attr_num("offset"), span.attr_num("bytes"));
      }
    }
    ASSERT_FALSE(tiles.empty());
    std::sort(tiles.begin(), tiles.end());
    std::int64_t cursor = 0;
    for (const auto& [offset, bytes] : tiles) {
      EXPECT_EQ(offset, cursor) << "gap or double-write at " << offset;
      EXPECT_GT(bytes, 0);
      cursor = offset + bytes;
    }
    EXPECT_EQ(static_cast<std::uint64_t>(cursor), stream_bytes);

    // Reconfigured restore with t2 tasks, then re-checkpoint.
    std::vector<int> mismatches(static_cast<std::size_t>(t2), -1);
    std::vector<std::int64_t> restored_it(static_cast<std::size_t>(t2), 0);
    {
      TaskGroup group(placement_of(t2));
      DistArray array("u", cube(n), sizeof(double), t2);
      const auto outcome = group.run([&](TaskContext& ctx) {
        if (ctx.rank() == 0) {
          array.install_distribution(DistSpec::block_auto(
              cube(n), t2, std::vector<Index>(3, shadow2)));
        }
        ctx.barrier();
        std::int64_t it = 0;
        core::ReplicatedStore store;
        store.register_i64("it", &it);
        core::DrmsCheckpoint engine(storage, {}, 0, 2048, false, &rec);
        core::RestartTiming timing;
        const core::CheckpointMeta meta =
            engine.restore_segment(ctx, "prop.a", store, tiny_segment(),
                                   timing);
        engine.restore_array(ctx, "prop.a", meta, array, timing);
        const std::size_t me = static_cast<std::size_t>(ctx.rank());
        mismatches[me] = count_mapped_mismatches(array, ctx.rank());
        restored_it[me] = it;
        const std::array<DistArray*, 1> arrays{&array};
        (void)engine.write(ctx, "prop.b", "prop", 2, store, arrays,
                           tiny_segment());
      });
      ASSERT_TRUE(outcome.completed) << outcome.kill_reason;
    }
    for (int r = 0; r < t2; ++r) {
      EXPECT_EQ(mismatches[static_cast<std::size_t>(r)], 0)
          << "rank " << r;
      EXPECT_EQ(restored_it[static_cast<std::size_t>(r)], 7);
    }

    // The re-checkpointed stream fingerprint matches bit-exactly — the
    // stream is distribution-independent, so any redistribution error
    // would flip the CRC.
    const core::CheckpointMeta meta_b =
        core::read_checkpoint_meta(storage, "prop.b");
    EXPECT_EQ(meta_b.array("u").stream_crc, meta_a.array("u").stream_crc);
    EXPECT_EQ(meta_b.array("u").stream_bytes, stream_bytes);
  }
}

}  // namespace
