// Tests for MPMD applications (§2.2): multiple SPMD components with
// their own distributed data sets, checkpointed at a globally consistent
// SET of SOPs via the MpmdCoordinator, and restarted with individually
// reconfigured task counts.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "core/drms_context.hpp"
#include "core/mpmd.hpp"
#include "rt/task_group.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace {

namespace sim = drms::sim;
using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::test::cube;
using drms::test::tag_of;

constexpr Index kN = 6;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 8 * 1024;
  m.system_bytes = 8 * 1024;
  return m;
}

sim::Placement nodes(std::vector<int> node_list) {
  return sim::Placement(sim::Machine::paper_sp16(), std::move(node_list));
}

TEST(MpmdCoordinator, AlignsEpochsAcrossComponents) {
  MpmdCoordinator coordinator({"flow", "structure"});
  std::atomic<int> flow_epochs{0};
  std::atomic<int> structure_epochs{0};

  std::vector<MpmdComponent> components;
  components.push_back(MpmdComponent{
      "flow", nodes({0, 1, 2}),
      [&](TaskContext& ctx, MpmdCoordinator& c) {
        for (int i = 0; i < 5; ++i) {
          const auto epoch = c.arrive("flow", ctx);
          EXPECT_EQ(epoch, i);
          if (ctx.rank() == 0) {
            flow_epochs.fetch_add(1);
          }
        }
      }});
  components.push_back(MpmdComponent{
      "structure", nodes({3, 4}),
      [&](TaskContext& ctx, MpmdCoordinator& c) {
        for (int i = 0; i < 5; ++i) {
          const auto epoch = c.arrive("structure", ctx);
          EXPECT_EQ(epoch, i);
          if (ctx.rank() == 0) {
            structure_epochs.fetch_add(1);
          }
        }
      }});

  const MpmdResult result = run_mpmd(std::move(components), coordinator);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(coordinator.epochs_completed(), 5);
  EXPECT_EQ(flow_epochs.load(), 5);
  EXPECT_EQ(structure_epochs.load(), 5);
}

TEST(MpmdCoordinator, UnknownComponentIsRejected) {
  MpmdCoordinator coordinator({"only"});
  drms::rt::TaskGroup group(nodes({0}));
  const auto result = group.run([&](TaskContext& ctx) {
    EXPECT_THROW((void)coordinator.arrive("other", ctx),
                 drms::support::ContractViolation);
  });
  EXPECT_TRUE(result.completed);
}

TEST(MpmdCoordinator, KilledComponentDoesNotWedgeTheOther) {
  // Component "a" arrives at the coordinator; component "b" dies before
  // arriving. The RC would kill every component of the application on a
  // component failure; the test plays that role, and "a" must unwind
  // through the kill-aware coordinator wait instead of wedging.
  MpmdCoordinator coordinator({"a", "b"});
  drms::rt::TaskGroup* group_a = nullptr;
  drms::rt::TaskGroup ga(nodes({0, 1}));
  drms::rt::TaskGroup gb(nodes({2}));
  group_a = &ga;
  std::thread ta([&] {
    const auto r = ga.run([&](TaskContext& ctx) {
      (void)coordinator.arrive("a", ctx);
    });
    EXPECT_TRUE(r.killed);
  });
  std::thread tb([&] {
    const auto r = gb.run([&](TaskContext& ctx) {
      (void)ctx;
      throw drms::support::Error("component b failed");
    });
    EXPECT_TRUE(r.killed);
    // The RC would now kill every component of the application:
    group_a->kill("sibling MPMD component failed");
  });
  ta.join();
  tb.join();
}

/// One SPMD component of a small coupled application: its own array, its
/// own checkpoint prefix, coordinated SOPs every 2 iterations.
void component_body(DrmsProgram& program, TaskContext& ctx,
                    MpmdCoordinator& coordinator, const std::string& name,
                    double seed_scale, int iterations,
                    const std::string& prefix) {
  DrmsContext drms(program, ctx);
  std::int64_t it = 0;
  drms.store().register_i64("it", &it);
  drms.initialize();

  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
  DistArray& u = drms.create_array("u", lo, hi);
  drms.distribute(u, DistSpec::block_auto(cube(kN), ctx.size(),
                                          std::vector<Index>(3, 0)));
  if (!drms.restarted()) {
    const Slice& mine = u.distribution().assigned(ctx.rank());
    mine.for_each_column_major([&](std::span<const Index> p) {
      u.local(ctx.rank()).set_f64(p, seed_scale * tag_of(p));
    });
    ctx.barrier();
  }

  while (it < iterations) {
    if (it > 0 && it % 2 == 0) {
      // Globally consistent point: a SET of SOPs, one per component.
      (void)coordinator.arrive(name, ctx);
      (void)drms.reconfig_checkpoint(
          mpmd_component_prefix(prefix, name));
    }
    const Slice& mine = u.distribution().assigned(ctx.rank());
    mine.for_each_column_major([&](std::span<const Index> p) {
      u.local(ctx.rank())
          .set_f64(p, u.local(ctx.rank()).get_f64(p) * 1.02 + 0.1);
    });
    ctx.barrier();
    ++it;
  }
}

double component_digest(DrmsProgram& program, TaskContext& ctx) {
  double sum = 0;
  if (ctx.rank() == 0) {
    DrmsContext view(program, ctx);
    DistArray& u = view.array("u");
    cube(kN).for_each_column_major(
        [&](std::span<const Index> p) { sum += u.get_f64(p); });
  }
  ctx.barrier();
  return sum;
}

TEST(Mpmd, CoordinatedCheckpointAndIndividuallyReconfiguredRestart) {
  constexpr int kIters = 7;
  Volume volume(16);

  // Reference digests from uninterrupted runs.
  double ref_flow = 0;
  double ref_structure = 0;
  {
    Volume ref_volume(16);
    MpmdCoordinator coordinator({"flow", "structure"});
    DrmsEnv env;
    env.storage = &ref_volume.backend();
    DrmsProgram flow("flow", env, tiny_segment(), 3);
    DrmsProgram structure("structure", env, tiny_segment(), 2);
    std::vector<MpmdComponent> components;
    components.push_back(MpmdComponent{
        "flow", nodes({0, 1, 2}),
        [&](TaskContext& ctx, MpmdCoordinator& c) {
          component_body(flow, ctx, c, "flow", 1.0, kIters, "ref");
          const double d = component_digest(flow, ctx);
          if (ctx.rank() == 0) ref_flow = d;
        }});
    components.push_back(MpmdComponent{
        "structure", nodes({3, 4}),
        [&](TaskContext& ctx, MpmdCoordinator& c) {
          component_body(structure, ctx, c, "structure", 3.0, kIters,
                         "ref");
          const double d = component_digest(structure, ctx);
          if (ctx.rank() == 0) ref_structure = d;
        }});
    ASSERT_TRUE(run_mpmd(std::move(components), coordinator).completed);
  }

  // Interrupted run: checkpoints at the coordinated it=2,4,6 SOPs; stop
  // right after the it=6 epoch (stop at 7 would finish; use iterations=7
  // then kill? simpler: run only to it=6 by passing iterations=6 — the
  // epoch at it=6 is then never reached, so use 7 with stop... we run the
  // full 7 here and restart from the it=6 state anyway).
  {
    MpmdCoordinator coordinator({"flow", "structure"});
    DrmsEnv env;
    env.storage = &volume.backend();
    DrmsProgram flow("flow", env, tiny_segment(), 3);
    DrmsProgram structure("structure", env, tiny_segment(), 2);
    std::vector<MpmdComponent> components;
    components.push_back(MpmdComponent{
        "flow", nodes({0, 1, 2}),
        [&](TaskContext& ctx, MpmdCoordinator& c) {
          component_body(flow, ctx, c, "flow", 1.0, kIters, "mp");
        }});
    components.push_back(MpmdComponent{
        "structure", nodes({3, 4}),
        [&](TaskContext& ctx, MpmdCoordinator& c) {
          component_body(structure, ctx, c, "structure", 3.0, kIters,
                         "mp");
        }});
    ASSERT_TRUE(run_mpmd(std::move(components), coordinator).completed);
    EXPECT_TRUE(checkpoint_exists(volume, "mp.flow"));
    EXPECT_TRUE(checkpoint_exists(volume, "mp.structure"));
  }

  // Restart: flow SHRINKS 3 -> 2 tasks, structure GROWS 2 -> 4 tasks —
  // individually reconfigured, from the consistent it=6 epoch.
  {
    MpmdCoordinator coordinator({"flow", "structure"});
    DrmsEnv flow_env;
    flow_env.storage = &volume.backend();
    flow_env.restart_prefix = "mp.flow";
    DrmsEnv structure_env;
    structure_env.storage = &volume.backend();
    structure_env.restart_prefix = "mp.structure";
    DrmsProgram flow("flow", flow_env, tiny_segment(), 2);
    DrmsProgram structure("structure", structure_env, tiny_segment(), 4);
    double flow_digest = 0;
    double structure_digest = 0;
    std::vector<MpmdComponent> components;
    components.push_back(MpmdComponent{
        "flow", nodes({0, 1}),
        [&](TaskContext& ctx, MpmdCoordinator& c) {
          component_body(flow, ctx, c, "flow", 1.0, kIters, "mp2");
          const double d = component_digest(flow, ctx);
          if (ctx.rank() == 0) flow_digest = d;
        }});
    components.push_back(MpmdComponent{
        "structure", nodes({2, 3, 4, 5}),
        [&](TaskContext& ctx, MpmdCoordinator& c) {
          component_body(structure, ctx, c, "structure", 3.0, kIters,
                         "mp2");
          const double d = component_digest(structure, ctx);
          if (ctx.rank() == 0) structure_digest = d;
        }});
    ASSERT_TRUE(run_mpmd(std::move(components), coordinator).completed);
    EXPECT_EQ(flow_digest, ref_flow);
    EXPECT_EQ(structure_digest, ref_structure);
  }
}

}  // namespace
