// Tests for the redundancy-encoded fast tier: fragment codec and naming,
// contiguous-split geometry, the RedundantBackend staged/encoded life
// cycle, a seeded sweep of lost-node subsets per scheme (scavenged
// content must be bit-identical to the failure-free run), the
// beyond-tolerance fallback through the tiered backend, the background
// encode service, offline fragment-set auditing, and the arch-side
// placement helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "arch/cluster.hpp"
#include "arch/placement.hpp"
#include "core/checkpoint_catalog.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/recorder.hpp"
#include "store/memory_backend.hpp"
#include "store/redundancy.hpp"
#include "store/redundant_backend.hpp"
#include "store/tiered_backend.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "svc/drain_service.hpp"
#include "svc/io_scheduler.hpp"

namespace {

using namespace drms;
using store::MemoryBackend;
using store::RedundancyKind;
using store::RedundancyScheme;
using store::RedundantBackend;
using store::TieredBackend;

constexpr RedundancyScheme kPartner{RedundancyKind::kPartner, 2};
constexpr RedundancyScheme kXor4{RedundancyKind::kXor, 4};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string string_of(const std::vector<std::byte>& b) {
  std::string out(b.size(), '\0');
  std::memcpy(out.data(), b.data(), b.size());
  return out;
}

/// Seeded payload, deliberately non-multiple-of-group sizes included.
std::vector<std::byte> seeded_payload(std::uint64_t seed, std::size_t size) {
  support::Rng rng(seed);
  std::vector<std::byte> out(size);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  return out;
}

std::uint32_t stream_crc(const store::StorageBackend& storage,
                         const std::string& name) {
  const auto file = storage.open(name);
  const std::vector<std::byte> content = file.read_at(0, file.size());
  return support::crc32c(content);
}

// ---- fragment naming and codec ----------------------------------------------

TEST(Redundancy, FragmentNameRoundTrip) {
  EXPECT_EQ(store::fragment_name("ckpt.g3.segment", 2), "ckpt.g3.segment#f2");
  const auto parsed = store::parse_fragment_name("ckpt.g3.segment#f2");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, "ckpt.g3.segment");
  EXPECT_EQ(parsed->index, 2);
  EXPECT_FALSE(store::parse_fragment_name("ckpt.g3.segment").has_value());
  EXPECT_FALSE(store::parse_fragment_name("ckpt#fx").has_value());
  EXPECT_FALSE(store::parse_fragment_name("#f1").has_value());
}

TEST(Redundancy, FragmentExtentsTileTheFileContiguously) {
  for (const std::uint64_t total : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
    for (const int pieces : {1, 2, 3, 4, 7}) {
      std::uint64_t expect_offset = 0;
      for (int i = 0; i < pieces; ++i) {
        const auto ext = store::fragment_extent(total, pieces, i);
        EXPECT_EQ(ext.offset, expect_offset);
        expect_offset += ext.length;
      }
      EXPECT_EQ(expect_offset, total);
      // Parity index sits past the data and carries no extent.
      EXPECT_EQ(store::fragment_extent(total, pieces, pieces).length, 0u);
    }
  }
}

TEST(Redundancy, FragmentCodecRoundTripRejectsCorruption) {
  MemoryBackend storage;
  const std::vector<std::byte> payload = seeded_payload(7, 100);
  store::FragmentHeader header;
  header.kind = RedundancyKind::kXor;
  header.index = 1;
  header.fragment_count = 4;
  header.payload_bytes = payload.size();
  header.total_bytes = 300;
  header.payload_crc = support::crc32c(payload);
  store::write_fragment(storage, "f#f1", header, payload);

  const auto back = store::read_fragment_header(storage, "f#f1");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->index, 1u);
  EXPECT_EQ(back->fragment_count, 4u);
  EXPECT_EQ(back->total_bytes, 300u);
  const auto data = store::read_fragment_payload(storage, "f#f1", *back);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(support::crc32c(data->bytes()), header.payload_crc);

  // Flip a payload byte: the CRC check must reject it.
  auto file = storage.open("f#f1");
  std::vector<std::byte> byte =
      file.read_at(store::kFragmentHeaderBytes + 10, 1);
  byte[0] ^= std::byte{0xff};
  file.write_at(store::kFragmentHeaderBytes + 10, byte);
  EXPECT_FALSE(store::read_fragment_payload(storage, "f#f1", *back)
                   .has_value());

  EXPECT_FALSE(store::read_fragment_header(storage, "missing").has_value());
  storage.create("tiny").write_at(0, bytes_of("xy"));
  EXPECT_FALSE(store::read_fragment_header(storage, "tiny").has_value());
}

// ---- RedundantBackend life cycle --------------------------------------------

TEST(RedundantBackend, StagedFilesBehaveLikeAMemoryTier) {
  RedundantBackend storage(4, kPartner);
  auto f = storage.create("dir/a");
  f.write_at(0, bytes_of("hello"));
  f.append(bytes_of(" world"));
  EXPECT_EQ(f.size(), 11u);
  EXPECT_EQ(string_of(storage.open("dir/a").read_at(0, 11)), "hello world");
  EXPECT_TRUE(storage.exists("dir/a"));
  EXPECT_EQ(storage.file_size("dir/a"), 11u);
  EXPECT_EQ(storage.list("dir/").size(), 1u);
  EXPECT_GE(storage.staged_node_of("dir/a"), 0);
  EXPECT_TRUE(storage.fragment_nodes_of("dir/a").empty());
  storage.remove("dir/a");
  EXPECT_FALSE(storage.exists("dir/a"));
}

TEST(RedundantBackend, EncodeFragmentsTheStagedCopy) {
  for (const auto& scheme : {kPartner, kXor4}) {
    RedundantBackend storage(4, scheme);
    const std::vector<std::byte> payload = seeded_payload(11, 1003);
    storage.create("ckpt.seg").write_at(0, payload);
    const std::uint32_t before = stream_crc(storage, "ckpt.seg");

    ASSERT_EQ(storage.encode_work().size(), 1u);
    const auto encoded = storage.encode_file("ckpt.seg");
    ASSERT_TRUE(encoded.has_value()) << scheme.describe();
    EXPECT_EQ(*encoded, payload.size());
    EXPECT_TRUE(storage.encode_work().empty());
    EXPECT_FALSE(storage.encode_file("ckpt.seg").has_value());

    // Fully encoded: no staged copy, one fragment per group slot, and
    // the logical content is unchanged.
    EXPECT_EQ(storage.staged_node_of("ckpt.seg"), -1);
    EXPECT_EQ(storage.fragment_nodes_of("ckpt.seg").size(),
              static_cast<std::size_t>(scheme.fragment_count()));
    EXPECT_TRUE(storage.exists("ckpt.seg"));
    EXPECT_EQ(storage.file_size("ckpt.seg"), payload.size());
    EXPECT_EQ(stream_crc(storage, "ckpt.seg"), before);

    // Redundancy overhead: partner doubles, xor adds one parity stripe.
    if (scheme.kind == RedundancyKind::kPartner) {
      EXPECT_EQ(storage.encoded_bytes(900), 1800u);
    } else {
      EXPECT_EQ(storage.encoded_bytes(900), 1200u);
    }
  }
}

TEST(RedundantBackend, WritingAnEncodedFileMaterializesItBack) {
  RedundantBackend storage(4, kXor4);
  storage.create("a").write_at(0, bytes_of("checkpoint state"));
  ASSERT_TRUE(storage.encode_file("a").has_value());
  storage.open("a").write_at(0, bytes_of("CHECK"));
  EXPECT_GE(storage.staged_node_of("a"), 0);
  EXPECT_TRUE(storage.fragment_nodes_of("a").empty());
  EXPECT_EQ(string_of(storage.open("a").read_at(0, 16)),
            "CHECKpoint state");
}

TEST(RedundantBackend, ReadRepairRebuildsAMissingFragmentOnFirstTouch) {
  RedundantBackend storage(4, kXor4);
  const std::vector<std::byte> payload = seeded_payload(23, 4096);
  storage.create("a").write_at(0, payload);
  ASSERT_TRUE(storage.encode_file("a").has_value());
  const std::vector<int> before = storage.fragment_nodes_of("a");
  storage.fail_node(before[0]);

  // The encoded file is still readable; the read reconstructs the dead
  // node's fragment and re-homes it onto a live node.
  EXPECT_TRUE(storage.exists("a"));
  EXPECT_EQ(stream_crc(storage, "a"),
            support::crc32c(std::span<const std::byte>(payload)));
  const std::vector<int> after = storage.fragment_nodes_of("a");
  for (const int node : after) {
    EXPECT_TRUE(storage.node_up(node));
  }
}

// ---- seeded scavenge sweep (satellite 4) ------------------------------------

/// All subsets of {0..3} of the given size.
std::vector<std::vector<int>> node_subsets(int size) {
  std::vector<std::vector<int>> out;
  for (int a = 0; a < 4; ++a) {
    if (size == 1) {
      out.push_back({a});
      continue;
    }
    for (int b = a + 1; b < 4; ++b) {
      out.push_back({a, b});
    }
  }
  return out;
}

/// Whether a lost-node subset stays within the scheme's per-group
/// tolerance on a 4-node tier.
bool within_tolerance(const RedundancyScheme& scheme,
                      const std::vector<int>& lost) {
  std::map<int, int> per_group;
  for (const int n : lost) {
    ++per_group[n / scheme.group_size];
  }
  for (const auto& [group, down] : per_group) {
    if (down > scheme.tolerated_losses()) {
      return false;
    }
  }
  return true;
}

TEST(RedundantBackend, ScavengeSweepRestoresEveryTolerableLossSubset) {
  constexpr int kFiles = 6;
  for (const auto& scheme : {kPartner, kXor4}) {
    // Failure-free fingerprints, once per scheme.
    std::map<std::string, std::uint32_t> baseline;
    for (int f = 0; f < kFiles; ++f) {
      baseline["job.g3.file" + std::to_string(f)] = support::crc32c(
          std::span<const std::byte>(seeded_payload(
              100 + static_cast<std::uint64_t>(f), 512 + f * 131)));
    }

    for (int size = 1; size <= 2; ++size) {
      for (const auto& lost : node_subsets(size)) {
        RedundantBackend storage(4, scheme);
        for (int f = 0; f < kFiles; ++f) {
          storage
              .create("job.g3.file" + std::to_string(f))
              .write_at(0, seeded_payload(
                              100 + static_cast<std::uint64_t>(f),
                              512 + f * 131));
        }
        ASSERT_EQ(storage.encode_all(), kFiles);
        for (const int node : lost) {
          storage.fail_node(node);
        }
        const store::ScavengeReport report = storage.scavenge();
        const std::string label =
            scheme.describe() + " lost={" + std::to_string(lost.front()) +
            (lost.size() > 1 ? "," + std::to_string(lost.back()) : "") +
            "}";

        if (within_tolerance(scheme, lost)) {
          // Every file rebuilt: content bit-identical to the
          // failure-free run, full fragment sets on live nodes.
          EXPECT_TRUE(report.complete()) << label;
          EXPECT_EQ(report.files_lost, 0) << label;
          EXPECT_EQ(report.crc_failures, 0) << label;
          for (const auto& [name, crc] : baseline) {
            ASSERT_TRUE(storage.exists(name)) << label << " " << name;
            EXPECT_EQ(stream_crc(storage, name), crc) << label << " "
                                                      << name;
          }
        } else {
          // Beyond tolerance: the overwhelmed group's files are dropped
          // (restores fall back to the slow tier), the others survive.
          EXPECT_GT(report.files_lost, 0) << label;
          for (const auto& name : report.lost) {
            EXPECT_FALSE(storage.exists(name)) << label << " " << name;
          }
          for (const auto& [name, crc] : baseline) {
            if (storage.exists(name)) {
              EXPECT_EQ(stream_crc(storage, name), crc) << label << " "
                                                        << name;
            }
          }
        }
      }
    }
  }
}

TEST(RedundantBackend, ScavengeReportCountsTheRebuild) {
  RedundantBackend storage(4, kPartner);
  const std::vector<std::byte> payload = seeded_payload(31, 2048);
  storage.create("a").write_at(0, payload);
  ASSERT_TRUE(storage.encode_file("a").has_value());

  const std::vector<int> nodes = storage.fragment_nodes_of("a");
  storage.fail_node(nodes[0]);
  const store::ScavengeReport report = storage.scavenge();
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.files_rebuilt, 1);
  EXPECT_EQ(report.fragments_rebuilt, 1);
  EXPECT_EQ(report.bytes_recovered, payload.size());
  EXPECT_EQ(stream_crc(storage, "a"),
            support::crc32c(std::span<const std::byte>(payload)));
}

// ---- beyond tolerance: tiered fallback --------------------------------------

TEST(RedundantBackend, BeyondToleranceLossFallsBackToTheSlowTier) {
  obs::Recorder rec;
  MemoryBackend slow_store;
  obs::InstrumentedBackend slow(slow_store, &rec, "slow");
  RedundantBackend fast(4, kPartner);
  TieredBackend tiered(fast, slow);

  const std::vector<std::byte> payload = seeded_payload(47, 3000);
  tiered.create("job.g3.seg").write_at(0, payload);
  ASSERT_EQ(fast.encode_all(), 1);
  tiered.drain();  // the slow tier holds the safety copy

  // Lose the file's whole partner pair: beyond tolerance.
  const std::vector<int> nodes = fast.fragment_nodes_of("job.g3.seg");
  ASSERT_EQ(nodes.size(), 2u);
  fast.fail_node(nodes[0]);
  fast.fail_node(nodes[1]);
  const store::ScavengeReport report = fast.scavenge();
  EXPECT_EQ(report.files_lost, 1);
  EXPECT_FALSE(report.complete());
  EXPECT_FALSE(fast.exists("job.g3.seg"));
  EXPECT_EQ(tiered.reconcile_fast_tier(), 1);

  // The tiered read now comes from the slow tier, bit-identical.
  const std::uint64_t slow_reads_before = rec.counter("store.slow.read_at.ops");
  EXPECT_EQ(stream_crc(tiered, "job.g3.seg"),
            support::crc32c(std::span<const std::byte>(payload)));
  EXPECT_GT(rec.counter("store.slow.read_at.ops"), slow_reads_before);
}

// ---- background encode service ----------------------------------------------

TEST(RedundantBackend, SubmitEncodeRunsTheWorkListThroughTheScheduler) {
  svc::IoScheduler::Options opts;
  opts.shard_count = 2;
  opts.force_async = true;
  svc::IoScheduler scheduler(opts);
  svc::JobToken job = scheduler.register_job("ckpt");
  RedundantBackend fast(4, kXor4);
  for (int f = 0; f < 5; ++f) {
    fast.create("job.g3.file" + std::to_string(f))
        .write_at(0, seeded_payload(static_cast<std::uint64_t>(f), 700));
  }

  const svc::EncodeTicket ticket = svc::submit_encode(scheduler, job, fast);
  EXPECT_EQ(ticket.files_submitted(), 5u);
  const svc::EncodeReport report = ticket.wait();
  EXPECT_EQ(report.files_encoded, 5);
  EXPECT_EQ(report.bytes_encoded, 5u * 700u);
  EXPECT_TRUE(fast.encode_work().empty());
  for (int f = 0; f < 5; ++f) {
    EXPECT_EQ(fast.staged_node_of("job.g3.file" + std::to_string(f)), -1);
  }

  // Races drop out of the report instead of erroring: a second submit
  // over the now-clean list is a no-op ticket.
  const svc::EncodeTicket empty = svc::submit_encode(scheduler, job, fast);
  EXPECT_EQ(empty.files_submitted(), 0u);
  EXPECT_EQ(empty.wait().files_encoded, 0);
}

// ---- offline fragment-set audit (fsck) --------------------------------------

TEST(RedundantBackend, MirrorExportsFragmentSetsForOfflineFsck) {
  RedundantBackend fast(4, kXor4);
  fast.create("job.g3.segment")
      .write_at(0, seeded_payload(61, 2000));
  fast.create("job.g3.meta").write_at(0, seeded_payload(62, 100));
  ASSERT_EQ(fast.encode_all(), 2);

  MemoryBackend exported;
  fast.mirror_to(exported);
  const auto states = core::fsck_scan(exported);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].prefix, "job.g3");
  EXPECT_TRUE(states[0].encoded_only);
  EXPECT_TRUE(states[0].problems.empty());
  ASSERT_EQ(states[0].fragment_sets.size(), 2u);
  for (const auto& fs : states[0].fragment_sets) {
    EXPECT_EQ(fs.present, 4);
    EXPECT_EQ(fs.expected, 4);
    EXPECT_TRUE(fs.recoverable) << fs.base;
  }

  // One missing fragment: still recoverable. Two: beyond tolerance, and
  // the scan says so.
  exported.remove("job.g3.segment#f0");
  auto one_down = core::fsck_scan(exported);
  ASSERT_EQ(one_down.size(), 1u);
  for (const auto& fs : one_down[0].fragment_sets) {
    EXPECT_TRUE(fs.recoverable) << fs.base;
  }
  exported.remove("job.g3.segment#f2");
  auto two_down = core::fsck_scan(exported);
  ASSERT_EQ(two_down.size(), 1u);
  bool found = false;
  for (const auto& fs : two_down[0].fragment_sets) {
    if (fs.base == "job.g3.segment") {
      found = true;
      EXPECT_EQ(fs.present, 2);
      EXPECT_FALSE(fs.recoverable);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(two_down[0].problems.empty());
}

TEST(RedundantBackend, FsckIgnoresFragmentsOnACommittedStateVolume) {
  // A plain committed state plus stray fragments of the same prefix: the
  // fragments must neither flag the state torn nor count as strays.
  MemoryBackend storage;
  storage.create("app.meta").write_at(0, bytes_of("not a real meta"));
  // No commit manifest: the state is torn regardless; what matters here
  // is that the fragments attach as a set instead of as state files.
  const std::vector<std::byte> payload = seeded_payload(71, 64);
  store::FragmentHeader header;
  header.kind = RedundancyKind::kPartner;
  header.index = 0;
  header.fragment_count = 2;
  header.payload_bytes = payload.size();
  header.total_bytes = payload.size();
  header.payload_crc = support::crc32c(payload);
  store::write_fragment(storage, "app.segment#f0", header, payload);
  header.index = 1;
  store::write_fragment(storage, "app.segment#f1", header, payload);

  const auto states = core::fsck_scan(storage);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].prefix, "app");
  EXPECT_FALSE(states[0].encoded_only);
  ASSERT_EQ(states[0].fragment_sets.size(), 1u);
  EXPECT_EQ(states[0].fragment_sets[0].base, "app.segment");
  EXPECT_EQ(states[0].fragment_sets[0].present, 2);
  EXPECT_TRUE(states[0].fragment_sets[0].recoverable);
  // The fragments are never reclaimable: scavenge owns their lifecycle.
  for (const auto& f : states[0].reclaimable) {
    EXPECT_EQ(f.find("#f"), std::string::npos) << f;
  }
}

// ---- arch-side placement helpers --------------------------------------------

TEST(Placement, ContiguousGroupsAndPartners) {
  const auto groups = arch::contiguous_groups(8, 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(groups[1], (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(arch::partner_of(0, 4), 1);
  EXPECT_EQ(arch::partner_of(1, 4), 0);
  EXPECT_EQ(arch::partner_of(2, 4), 3);
  EXPECT_THROW((void)arch::contiguous_groups(6, 4), support::Error);
}

TEST(Placement, GroupsScavengeableTracksPerGroupLosses) {
  sim::Machine machine;
  machine.node_count = 4;
  machine.server_count = 4;
  arch::Cluster cluster(machine, nullptr);
  EXPECT_TRUE(arch::groups_scavengeable(cluster, 2, 1));
  cluster.fail_node(0);
  EXPECT_TRUE(arch::groups_scavengeable(cluster, 2, 1));
  cluster.fail_node(2);
  EXPECT_TRUE(arch::groups_scavengeable(cluster, 2, 1));
  cluster.fail_node(1);  // pair {0,1} fully gone
  EXPECT_FALSE(arch::groups_scavengeable(cluster, 2, 1));
  EXPECT_EQ(cluster.up_nodes(), (std::vector<int>{3}));
}

}  // namespace
