// Tests for the bench JSON writer: structure/comma bookkeeping, RFC 8259
// string escaping (control characters included), non-finite numbers, and
// the unbalanced-frame guards.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "../bench/json_writer.hpp"
#include "support/error.hpp"

namespace {

using drms::bench::JsonWriter;

TEST(JsonWriter, NestedStructureWithCommas) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("a", 1);
  json.field("b", "x");
  json.begin_array("cells");
  json.begin_object();
  json.field("n", std::uint64_t{7});
  json.end_object();
  json.begin_object();
  json.field("ok", true);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(),
            R"({"a":1,"b":"x","cells":[{"n":7},{"ok":true}]})");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControls) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("s", std::string("a\"b\\c\nd\te\rf"));
  // Raw control characters (here: 0x01 and 0x1f) must become \u00XX, not
  // leak into the output and corrupt the document.
  json.field("ctl", std::string("x\x01y\x1fz"));
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\te\\rf\","
            "\"ctl\":\"x\\u0001y\\u001fz\"}");
}

TEST(JsonWriter, EscapedKeysToo) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field(std::string("k\x02"), 1);
  json.end_object();
  EXPECT_EQ(out.str(), "{\"k\\u0002\":1}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("nan", std::numeric_limits<double>::quiet_NaN());
  json.field("inf", std::numeric_limits<double>::infinity());
  json.field("x", 0.5);
  json.end_object();
  EXPECT_EQ(out.str(), R"({"nan":null,"inf":null,"x":0.5})");
}

TEST(JsonWriter, UnbalancedEndIsAContractViolation) {
  std::ostringstream out;
  JsonWriter json(out);
  EXPECT_THROW(json.end_object(), drms::support::ContractViolation);
  EXPECT_THROW(json.end_array(), drms::support::ContractViolation);
  // A balanced document still works on the same writer.
  json.begin_object();
  json.end_object();
  EXPECT_THROW(json.end_object(), drms::support::ContractViolation);
}

}  // namespace
