// Integration tests for exchange/redistribute/array_assign across the
// task runtime: value preservation, shadow consistency, and parameterized
// sweeps over (source tasks grid, destination grid, shadow widths).
#include <gtest/gtest.h>

#include <array>

#include "core/redistribute.hpp"
#include "support/error.hpp"
#include "rt/task_group.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::count_mapped_mismatches;
using drms::test::cube;
using drms::test::fill_assigned_tagged;
using drms::test::placement_of;
using drms::test::tag_of;

TEST(Redistribute, PreservesValuesAcrossGridChange) {
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  DistArray array("u", cube(8), sizeof(double), kP);
  const std::array<Index, 3> shadow{0, 0, 0};
  const std::array<int, 3> grid_a{1, 2, 2};
  const std::array<int, 3> grid_b{4, 1, 1};

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block(cube(8), grid_a, shadow));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    redistribute(ctx, array, DistSpec::block(cube(8), grid_b, shadow));

    EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Redistribute, UpdatesShadowCopiesConsistently) {
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  DistArray array("u", cube(8), sizeof(double), kP);
  const std::array<Index, 3> shadow{1, 1, 1};

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(cube(8), kP, shadow));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    // Redistribute to a shadowed distribution on a different grid; every
    // mapped element (shadows included) must carry the pattern.
    const std::array<int, 3> grid{4, 1, 1};
    redistribute(ctx, array, DistSpec::block(cube(8), grid, shadow));
    EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Redistribute, IdentityRedistributionIsANoOpOnValues) {
  constexpr int kP = 3;
  TaskGroup group(placement_of(kP));
  DistArray array("u", cube(6), sizeof(double), kP);
  const std::array<Index, 3> shadow{1, 0, 0};
  const DistSpec spec = DistSpec::block_auto(cube(6), kP, shadow);

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(spec);
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();
    redistribute(ctx, array, spec);
    EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

TEST(ArrayAssign, CopiesBetweenDifferentlyDistributedArrays) {
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  DistArray a("a", cube(8), sizeof(double), kP);
  DistArray b("b", cube(8), sizeof(double), kP);
  const std::array<Index, 3> shadow{0, 0, 0};
  const std::array<Index, 3> shadow_b{1, 1, 1};
  const std::array<int, 3> grid_a{2, 2, 1};
  const std::array<int, 3> grid_b{1, 1, 4};

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      a.install_distribution(DistSpec::block(cube(8), grid_a, shadow));
      b.install_distribution(DistSpec::block(cube(8), grid_b, shadow_b));
    }
    ctx.barrier();
    fill_assigned_tagged(a, ctx.rank());
    ctx.barrier();

    array_assign(ctx, a, b);
    EXPECT_EQ(count_mapped_mismatches(b, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

TEST(ArrayAssign, ShapeMismatchThrows) {
  constexpr int kP = 2;
  TaskGroup group(placement_of(kP));
  DistArray a("a", cube(8), sizeof(double), kP);
  DistArray b("b", cube(4), sizeof(double), kP);
  const std::array<Index, 3> shadow{0, 0, 0};

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      a.install_distribution(DistSpec::block_auto(cube(8), kP, shadow));
      b.install_distribution(DistSpec::block_auto(cube(4), kP, shadow));
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      EXPECT_THROW(array_assign(ctx, a, b),
                   drms::support::ContractViolation);
    }
  });
  // Rank 0 throws before the collective; the group is killed as a result
  // of the uncaught contract violation in the lambda? No: EXPECT_THROW
  // swallows it, so the run completes (rank 1 never entered the
  // collective).
  EXPECT_TRUE(result.completed);
}

/// Parameterized sweep over redistribution scenarios.
struct RedistCase {
  int from_tasks;
  int to_grid0, to_grid1, to_grid2;
  Index shadow;
  Index n;
};

class RedistributeSweep : public ::testing::TestWithParam<RedistCase> {};

TEST_P(RedistributeSweep, ValuePreservation) {
  const auto c = GetParam();
  const int kP = std::max(c.from_tasks,
                          c.to_grid0 * c.to_grid1 * c.to_grid2);
  TaskGroup group(placement_of(kP));
  DistArray array("u", cube(c.n), sizeof(double), kP);
  const std::array<Index, 3> shadow{c.shadow, c.shadow, c.shadow};
  const std::array<int, 3> to_grid{c.to_grid0, c.to_grid1, c.to_grid2};

  // Pad a distribution over fewer tasks with empty sections so it spans
  // the whole kP-task group.
  const auto padded = [&](const DistSpec& partial) {
    std::vector<TaskSection> sections;
    for (int t = 0; t < kP; ++t) {
      if (t < partial.task_count()) {
        sections.push_back(partial.section(t));
      } else {
        sections.push_back(TaskSection{Slice::empty_of_rank(3),
                                       Slice::empty_of_rank(3)});
      }
    }
    return DistSpec(cube(c.n), std::move(sections));
  };

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          padded(DistSpec::block_auto(cube(c.n), c.from_tasks, shadow)));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    redistribute(ctx, array,
                 padded(DistSpec::block(cube(c.n), to_grid, shadow)));
    EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistributeSweep,
    ::testing::Values(RedistCase{1, 2, 2, 2, 0, 8},
                      RedistCase{8, 1, 1, 1, 0, 8},
                      RedistCase{4, 3, 1, 2, 1, 12},
                      RedistCase{2, 1, 5, 1, 1, 10},
                      RedistCase{6, 2, 2, 1, 2, 8},
                      RedistCase{3, 7, 1, 1, 0, 7}));

}  // namespace
