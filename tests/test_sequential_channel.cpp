// Tests for sequential (no-seek) channels and serial streaming through
// them — the paper's socket/tape claim for P = 1 streaming, and the
// inter-application communication path built on the same machinery.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/redistribute.hpp"
#include "core/sequential_channel.hpp"
#include "core/streamer.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::count_mapped_mismatches;
using drms::test::cube;
using drms::test::fill_assigned_tagged;
using drms::test::placement_of;

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(InMemoryPipe, WriteThenRead) {
  InMemoryPipe pipe;
  pipe.write(bytes_of("hello "));
  pipe.write(bytes_of("world"));
  std::vector<std::byte> out(11);
  pipe.read(out);
  EXPECT_EQ(std::memcmp(out.data(), "hello world", 11), 0);
  EXPECT_EQ(pipe.bytes_transferred(), 11u);
}

TEST(InMemoryPipe, BlocksWhenFullUntilDrained) {
  InMemoryPipe pipe(/*capacity=*/8);
  std::thread writer([&] {
    pipe.write(bytes_of("0123456789abcdef"));  // 16 > capacity
    pipe.close();
  });
  std::vector<std::byte> out(16);
  pipe.read(out);
  writer.join();
  EXPECT_EQ(std::memcmp(out.data(), "0123456789abcdef", 16), 0);
}

TEST(InMemoryPipe, PrematureCloseThrowsOnRead) {
  InMemoryPipe pipe;
  pipe.write(bytes_of("abc"));
  pipe.close();
  std::vector<std::byte> out(10);
  EXPECT_THROW(pipe.read(out), drms::support::IoError);
}

TEST(InMemoryPipe, WriteAfterCloseThrows) {
  InMemoryPipe pipe;
  pipe.close();
  EXPECT_THROW(pipe.write(bytes_of("x")), drms::support::IoError);
}

TEST(FileChannel, SinkThenSourceRoundTrip) {
  Volume volume(4);
  volume.create("tape");
  FileSink sink(volume.open("tape"));
  sink.write(bytes_of("record-1"));
  sink.write(bytes_of("record-2"));

  FileSource source(volume.open("tape"));
  std::vector<std::byte> out(16);
  source.read(out);
  EXPECT_EQ(std::memcmp(out.data(), "record-1record-2", 16), 0);
  std::vector<std::byte> more(1);
  EXPECT_THROW(source.read(more), drms::support::IoError);
}

TEST(SequentialStreaming, MatchesParallelFileBytes) {
  // Stream the same tagged array (a) in parallel to a file and (b)
  // serially through a tape-like sink; byte streams must be identical.
  constexpr int kP = 4;
  const Slice box = cube(8);
  Volume volume(16);
  volume.create("parallel");
  volume.create("tape");

  TaskGroup group(placement_of(kP));
  DistArray array("u", box, sizeof(double), kP);
  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(box, kP, std::vector<Index>(3, 1)));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    const ArrayStreamer streamer(nullptr, {}, 700);
    streamer.write_section(ctx, array, box, volume.open("parallel"), 0,
                           kP);
    ctx.barrier();
    FileSink sink(volume.open("tape"));
    streamer.write_section_sequential(ctx, array, box, sink);
  });
  ASSERT_TRUE(result.completed);

  const auto par = volume.open("parallel");
  const auto tape = volume.open("tape");
  ASSERT_EQ(par.size(), tape.size());
  EXPECT_EQ(par.read_at(0, par.size()), tape.read_at(0, tape.size()));
}

TEST(SequentialStreaming, ReadBackScattersCorrectly) {
  constexpr int kP = 3;
  const Slice box = cube(8);
  Volume volume(16);
  volume.create("tape");

  // Producer group writes the stream...
  {
    TaskGroup group(placement_of(2));
    DistArray array("u", box, sizeof(double), 2);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(
            DistSpec::block_auto(box, 2, std::vector<Index>(3, 0)));
      }
      ctx.barrier();
      fill_assigned_tagged(array, ctx.rank());
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {});
      FileSink sink(volume.open("tape"));
      streamer.write_section_sequential(ctx, array, box, sink);
    });
    ASSERT_TRUE(result.completed);
  }
  // ...a differently-sized consumer group reads it back sequentially.
  {
    TaskGroup group(placement_of(kP));
    DistArray array("v", box, sizeof(double), kP);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(
            DistSpec::block_auto(box, kP, std::vector<Index>(3, 1)));
      }
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {});
      FileSource source(volume.open("tape"));
      streamer.read_section_sequential(ctx, array, box, source);
      ctx.barrier();
      EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
    });
    ASSERT_TRUE(result.completed);
  }
}

TEST(SequentialStreaming, InterApplicationPipeTransfer) {
  // Two concurrently running "applications" (task groups) exchange a
  // distributed array section through a socket-like pipe — the paper's
  // inter-application communication use of the streaming operations.
  const Slice box = cube(6);
  InMemoryPipe pipe(/*capacity=*/4096);

  TaskGroup producer(placement_of(2));
  TaskGroup consumer(placement_of(4));
  DistArray source_array("a", box, sizeof(double), 2);
  DistArray dest_array("b", box, sizeof(double), 4);

  std::thread producer_thread([&] {
    const auto result = producer.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        source_array.install_distribution(
            DistSpec::block_auto(box, 2, std::vector<Index>(3, 0)));
      }
      ctx.barrier();
      fill_assigned_tagged(source_array, ctx.rank());
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {}, 512);
      streamer.write_section_sequential(ctx, source_array, box,
                                        pipe.sink());
      if (ctx.rank() == 0) {
        pipe.close();
      }
    });
    EXPECT_TRUE(result.completed);
  });

  const auto result = consumer.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      dest_array.install_distribution(
          DistSpec::block_auto(box, 4, std::vector<Index>(3, 1)));
    }
    ctx.barrier();
    const ArrayStreamer streamer(nullptr, {}, 512);
    streamer.read_section_sequential(ctx, dest_array, box, pipe.source());
    ctx.barrier();
    EXPECT_EQ(count_mapped_mismatches(dest_array, ctx.rank()), 0);
  });
  producer_thread.join();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(pipe.bytes_transferred(),
            static_cast<std::uint64_t>(box.element_count()) *
                sizeof(double));
}

}  // namespace
