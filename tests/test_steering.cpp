// Tests for computational steering: an external client fetches and
// stores array sections of a running application at steering points,
// using the distribution-independent stream representation.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <thread>

#include "core/drms_context.hpp"
#include "core/steering.hpp"
#include "rt/task_group.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::placement_of;
using drms::test::tag_of;

constexpr Index kN = 8;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 8 * 1024;
  m.system_bytes = 8 * 1024;
  return m;
}

std::vector<double> as_doubles(const std::vector<std::byte>& bytes) {
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

std::vector<std::byte> from_doubles(const std::vector<double>& values) {
  std::vector<std::byte> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

/// App skeleton: tagged array, iterations with a steering point each.
struct SteeredApp {
  Volume volume{16};
  SteeringChannel channel;
  std::atomic<std::int64_t> current_iteration{-1};
  std::atomic<bool> finished{false};

  /// Runs `tasks` tasks for `iterations`; each iteration services the
  /// channel, then scales the field by 2.
  void run(int tasks, int iterations) {
    DrmsEnv env;
    env.storage = &volume.backend();
    DrmsProgram program("steered", env, tiny_segment(), tasks);
    TaskGroup group(placement_of(tasks));
    const auto result = group.run([&](TaskContext& ctx) {
      DrmsContext drms(program, ctx);
      std::int64_t it = 0;
      drms.store().register_i64("it", &it);
      drms.initialize();
      const std::array<Index, 3> lo{0, 0, 0};
      const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
      DistArray& u = drms.create_array("u", lo, hi);
      drms.distribute(u, DistSpec::block_auto(cube(kN), tasks,
                                              std::vector<Index>(3, 0)));
      const Slice& mine = u.distribution().assigned(ctx.rank());
      mine.for_each_column_major([&](std::span<const Index> p) {
        u.local(ctx.rank()).set_f64(p, tag_of(p));
      });
      ctx.barrier();

      while (it < iterations) {
        if (ctx.rank() == 0) {
          current_iteration.store(it);
        }
        (void)drms.service_steering(channel);
        mine.for_each_column_major([&](std::span<const Index> p) {
          u.local(ctx.rank())
              .set_f64(p, u.local(ctx.rank()).get_f64(p) * 2.0);
        });
        ctx.barrier();
        ++it;
      }
      // Final steering point so late requests still resolve.
      (void)drms.service_steering(channel);
    });
    finished.store(true);
    EXPECT_TRUE(result.completed);
  }
};

TEST(Steering, FetchReturnsCanonicalStream) {
  SteeredApp app;
  // Request queued BEFORE the run starts: serviced at iteration 0, i.e.
  // before any scaling.
  const Slice section{{Range::contiguous(1, 2), Range::single(3),
                       Range::contiguous(0, 1)}};
  auto future = app.channel.fetch("u", section);
  app.run(4, 3);

  const auto values = as_doubles(future.get());
  std::vector<double> expected;
  section.for_each_column_major(
      [&](std::span<const Index> p) { expected.push_back(tag_of(p)); });
  EXPECT_EQ(values, expected);
}

TEST(Steering, StoreOverwritesSection) {
  SteeredApp app;
  const Slice section{{Range::contiguous(0, 1), Range::contiguous(0, 0),
                       Range::single(0)}};
  // Store 99s into the section at iteration 0; the app then doubles the
  // whole field 2 times -> the section ends at 99 * 2^2... but stores at
  // iteration 0 happen BEFORE scaling of iteration 0, so factor is 2^2
  // for a 2-iteration run.
  auto ack = app.channel.store("u", section,
                               from_doubles({99.0, 99.0}));
  app.run(3, 2);
  ack.get();  // no exception

  // Fetch the final values through a fresh run? Simpler: fetch queued
  // after the fact resolves at the final steering point of the SAME run —
  // but the run already ended. Instead verify via a second fetch during a
  // new run: not applicable. The ack already proves the store happened;
  // correctness of placement is covered by the combined test below.
}

TEST(Steering, FetchAfterStoreObservesTheWrite) {
  SteeredApp app;
  const Slice section{{Range::contiguous(2, 3), Range::single(1),
                       Range::single(4)}};
  auto ack = app.channel.store("u", section, from_doubles({-5.0, -7.0}));
  auto readback = app.channel.fetch("u", section);
  // Both requests are serviced at the SAME steering point (iteration 0),
  // in submission order: store then fetch.
  app.run(4, 1);
  ack.get();
  EXPECT_EQ(as_doubles(readback.get()), (std::vector<double>{-5.0, -7.0}));
}

TEST(Steering, MidRunInjectionSteersTheComputation) {
  SteeredApp app;
  const Slice whole = cube(kN);
  std::thread client([&] {
    // Wait until the app is past iteration 0, then zero the entire field.
    while (app.current_iteration.load() < 1 && !app.finished.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<double> zeros(
        static_cast<std::size_t>(whole.element_count()), 0.0);
    auto ack = app.channel.store("u", whole, from_doubles(zeros));
    ack.get();
    // After zeroing, any fetch must come back all zero no matter how
    // many more doublings run.
    auto verify = app.channel.fetch("u", whole);
    const auto values = as_doubles(verify.get());
    for (const double v : values) {
      EXPECT_EQ(v, 0.0);
    }
  });
  app.run(4, 50);
  client.join();
}

TEST(Steering, ErrorsAreReportedThroughTheFuture) {
  SteeredApp app;
  auto unknown = app.channel.fetch("nonexistent", cube(kN));
  auto outside = app.channel.fetch(
      "u", Slice{{Range::contiguous(0, kN), Range::contiguous(0, 1),
                  Range::single(0)}});  // x overshoots the box
  auto bad_store = app.channel.store("u", cube(kN),
                                     from_doubles({1.0}));  // wrong size
  app.run(2, 1);
  EXPECT_THROW((void)unknown.get(), drms::support::Error);
  EXPECT_THROW((void)outside.get(), drms::support::Error);
  EXPECT_THROW((void)bad_store.get(), drms::support::Error);
}

TEST(SteeringChannel, PendingAndDrain) {
  SteeringChannel channel;
  EXPECT_EQ(channel.pending(), 0u);
  auto f1 = channel.fetch("a", cube(2));
  auto f2 = channel.store("b", cube(2), {});
  EXPECT_EQ(channel.pending(), 2u);
  auto drained = channel.drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(channel.pending(), 0u);
  EXPECT_EQ(drained[0]->kind, SteeringRequest::Kind::kFetch);
  EXPECT_EQ(drained[1]->kind, SteeringRequest::Kind::kStore);
}

}  // namespace
