// Tests for the PIOFS storage substrate: sparse extent files, volume
// namespace operations, stripe accounting, concurrency, and host
// import/export.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <thread>

#include "piofs/extent_file.hpp"
#include "piofs/volume.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace {

using namespace drms::piofs;
using drms::support::IoError;
using drms::support::kMiB;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return out;
}

TEST(ExtentFile, WriteReadRoundTrip) {
  ExtentFile f;
  const auto data = pattern(100000);
  f.write_at(12345, data);
  EXPECT_EQ(f.size(), 12345u + data.size());
  EXPECT_EQ(f.read_at(12345, data.size()), data);
}

TEST(ExtentFile, UnwrittenRegionsReadAsZero) {
  ExtentFile f;
  f.write_at(1000, pattern(10));
  const auto hole = f.read_at(0, 1000);
  for (const auto b : hole) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(ExtentFile, ZeroFillIsSparse) {
  ExtentFile f;
  f.write_zeros_at(0, 100 * kMiB);
  EXPECT_EQ(f.size(), 100 * kMiB);
  EXPECT_EQ(f.allocated_bytes(), 0u) << "zero-fill must not allocate";
  // And it still reads back as zeros.
  const auto data = f.read_at(50 * kMiB, 64);
  for (const auto b : data) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(ExtentFile, ZeroFillClearsExistingData) {
  ExtentFile f;
  f.write_at(0, pattern(256));
  f.write_zeros_at(100, 50);
  const auto data = f.read_at(0, 256);
  const auto ref = pattern(256);
  for (std::size_t i = 0; i < 256; ++i) {
    if (i >= 100 && i < 150) {
      EXPECT_EQ(data[i], std::byte{0});
    } else {
      EXPECT_EQ(data[i], ref[i]);
    }
  }
}

TEST(ExtentFile, CrossBlockWrites) {
  ExtentFile f;
  const std::uint64_t off = ExtentFile::kBlockSize - 17;
  const auto data = pattern(ExtentFile::kBlockSize + 40);
  f.write_at(off, data);
  EXPECT_EQ(f.read_at(off, data.size()), data);
}

TEST(ExtentFile, ReadPastEndIsContractViolation) {
  ExtentFile f;
  f.write_at(0, pattern(10));
  EXPECT_THROW((void)f.read_at(5, 10),
               drms::support::ContractViolation);
}

TEST(Volume, CreateOpenRemove) {
  Volume v(16);
  EXPECT_FALSE(v.exists("a"));
  v.create("a").write_at(0, pattern(10));
  EXPECT_TRUE(v.exists("a"));
  EXPECT_EQ(v.file_size("a"), 10u);
  EXPECT_EQ(v.open("a").read_at(0, 10), pattern(10));
  v.remove("a");
  EXPECT_FALSE(v.exists("a"));
  EXPECT_THROW((void)v.open("a"), IoError);
  EXPECT_THROW(v.remove("a"), IoError);
}

TEST(Volume, CreateTruncatesExisting) {
  Volume v(4);
  v.create("f").write_at(0, pattern(100));
  const FileHandle again = v.create("f");
  EXPECT_EQ(again.size(), 0u);
}

TEST(Volume, ListAndPrefixOperations) {
  Volume v(4);
  v.create("ckpt.meta");
  v.create("ckpt.segment");
  v.create("ckpt.array.u");
  v.create("other");
  EXPECT_EQ(v.list("ckpt.").size(), 3u);
  EXPECT_EQ(v.list().size(), 4u);
  EXPECT_EQ(v.remove_prefix("ckpt."), 3);
  EXPECT_EQ(v.list().size(), 1u);
}

TEST(Volume, TotalSizeSumsPrefix) {
  Volume v(4);
  v.create("s.a").write_zeros_at(0, 100);
  v.create("s.b").write_zeros_at(0, 23);
  v.create("t.c").write_zeros_at(0, 1000);
  EXPECT_EQ(v.total_size("s."), 123u);
}

TEST(Volume, AppendTracksEndOfFile) {
  Volume v(4);
  FileHandle f = v.create("log");
  f.append(pattern(10, 1));
  f.append(pattern(10, 2));
  EXPECT_EQ(f.size(), 20u);
  EXPECT_EQ(f.read_at(10, 10), pattern(10, 2));
}

TEST(Volume, StripeAccountingRoundRobin) {
  const int kServers = 4;
  const std::uint64_t kUnit = 32 * 1024;
  Volume v(kServers, kUnit);
  // Write exactly 8 stripe cells: each server gets 2 cells.
  v.create("f").write_zeros_at(0, 8 * kUnit);
  const VolumeStats s = v.stats();
  EXPECT_EQ(s.bytes_written, 8 * kUnit);
  ASSERT_EQ(s.per_server_bytes_written.size(),
            static_cast<std::size_t>(kServers));
  for (const auto b : s.per_server_bytes_written) {
    EXPECT_EQ(b, 2 * kUnit);
  }
  EXPECT_EQ(v.server_of(0), 0);
  EXPECT_EQ(v.server_of(kUnit), 1);
  EXPECT_EQ(v.server_of(kServers * kUnit), 0);
}

TEST(Volume, StatsCountReadsAndResets) {
  Volume v(2);
  v.create("f").write_at(0, pattern(100));
  (void)v.open("f").read_at(0, 60);
  VolumeStats s = v.stats();
  EXPECT_EQ(s.bytes_read, 60u);
  EXPECT_EQ(s.read_ops, 1u);
  EXPECT_EQ(s.write_ops, 1u);
  EXPECT_EQ(s.files_created, 1u);
  v.reset_stats();
  s = v.stats();
  EXPECT_EQ(s.bytes_read + s.bytes_written + s.read_ops + s.write_ops, 0u);
}

TEST(Volume, ConcurrentDisjointWritersAreSafe) {
  Volume v(16);
  FileHandle f = v.create("par");
  constexpr int kThreads = 8;
  constexpr std::size_t kChunk = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, t] {
      f.write_at(static_cast<std::uint64_t>(t) * kChunk,
                 pattern(kChunk, static_cast<unsigned>(t)));
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(f.read_at(static_cast<std::uint64_t>(t) * kChunk, kChunk),
              pattern(kChunk, static_cast<unsigned>(t)));
  }
}

TEST(Volume, PerFileStripeWidth) {
  Volume v(16);
  v.create("wide");
  EXPECT_EQ(v.stripe_servers_of("wide"), 16);
  v.create_striped("narrow", 4);
  EXPECT_EQ(v.stripe_servers_of("narrow"), 4);
  // Recreating with plain create() resets to full width.
  v.create("narrow");
  EXPECT_EQ(v.stripe_servers_of("narrow"), 16);
  EXPECT_THROW((void)v.create_striped("bad", 17),
               drms::support::ContractViolation);
  EXPECT_THROW((void)v.stripe_servers_of("missing"), IoError);
  v.create_striped("gone", 2);
  v.remove("gone");
  v.create("gone");
  EXPECT_EQ(v.stripe_servers_of("gone"), 16);
}

TEST(Volume, UsageTracksLogicalAndAllocated) {
  Volume v(4);
  EXPECT_EQ(v.usage().file_count, 0u);
  v.create("real").write_at(0, pattern(100000));
  v.create("sparse").write_zeros_at(0, 10 * kMiB);
  const auto u = v.usage();
  EXPECT_EQ(u.file_count, 2u);
  EXPECT_EQ(u.logical_bytes, 100000u + 10 * kMiB);
  // The sparse file allocates nothing; the real one allocates in blocks.
  EXPECT_LT(u.allocated_bytes, 2 * 100000u + 64 * 1024);
  EXPECT_GE(u.allocated_bytes, 100000u);
}

TEST(Volume, ExportImportRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "drms_piofs_export_test";
  fs::remove_all(dir);

  Volume v(4);
  v.create("ckpt.meta").write_at(0, pattern(64, 3));
  v.create("ckpt.array.u").write_at(0, pattern(5000, 4));
  v.create("unrelated").write_at(0, pattern(10, 5));
  v.export_to_directory("ckpt.", dir.string());

  Volume w(8);  // a "different system": more servers
  w.import_from_directory(dir.string(), "ckpt.");
  EXPECT_TRUE(w.exists("ckpt.meta"));
  EXPECT_TRUE(w.exists("ckpt.array.u"));
  EXPECT_FALSE(w.exists("unrelated"));
  EXPECT_EQ(w.open("ckpt.array.u").read_at(0, 5000), pattern(5000, 4));

  fs::remove_all(dir);
}

TEST(Volume, ImportFromMissingDirectoryThrows) {
  Volume v(4);
  EXPECT_THROW(v.import_from_directory("/nonexistent/drms/dir", ""),
               IoError);
}

}  // namespace
