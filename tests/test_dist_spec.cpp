// Tests for distribution specifications: grid factorization, block
// distributions with shadow regions, invariant validation, adjust(), and
// the Table-4 shadow-accounting behaviour.
#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <set>

#include "core/dist_spec.hpp"
#include "support/error.hpp"

namespace {

using namespace drms::core;
using drms::support::ContractViolation;
using drms::support::Error;

Slice grid3(Index n) {
  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{n - 1, n - 1, n - 1};
  return Slice::box(lo, hi);
}

TEST(FactorGrid, ProductEqualsTasks) {
  for (int tasks = 1; tasks <= 64; ++tasks) {
    for (int dims = 1; dims <= 4; ++dims) {
      const auto grid = factor_grid(tasks, dims);
      ASSERT_EQ(static_cast<int>(grid.size()), dims);
      EXPECT_EQ(std::accumulate(grid.begin(), grid.end(), 1,
                                std::multiplies<>()),
                tasks);
    }
  }
}

TEST(FactorGrid, NearCubic) {
  EXPECT_EQ(factor_grid(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(factor_grid(16, 3), (std::vector<int>{2, 2, 4}));
  EXPECT_EQ(factor_grid(64, 3), (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(factor_grid(125, 3), (std::vector<int>{5, 5, 5}));
  EXPECT_EQ(factor_grid(6, 2), (std::vector<int>{2, 3}));
}

TEST(DistSpec, Block1D) {
  const Slice box{{Range::contiguous(0, 9)}};
  const std::array<int, 1> grid{2};
  const std::array<Index, 1> shadow{0};
  const DistSpec spec = DistSpec::block(box, grid, shadow);
  EXPECT_EQ(spec.task_count(), 2);
  EXPECT_EQ(spec.assigned(0), (Slice{{Range::contiguous(0, 4)}}));
  EXPECT_EQ(spec.assigned(1), (Slice{{Range::contiguous(5, 9)}}));
  EXPECT_TRUE(spec.fully_assigned());
}

TEST(DistSpec, BlockHandlesRemainders) {
  const Slice box{{Range::contiguous(0, 9)}};
  const std::array<int, 1> grid{3};
  const std::array<Index, 1> shadow{0};
  const DistSpec spec = DistSpec::block(box, grid, shadow);
  // floor(c*10/3): 0..2 -> sizes 3,4,3... (0:2, 3:5, 6:9) per the formula
  Index total = 0;
  for (int t = 0; t < 3; ++t) {
    total += spec.assigned(t).element_count();
  }
  EXPECT_EQ(total, 10);
  EXPECT_TRUE(spec.fully_assigned());
}

TEST(DistSpec, ShadowsExpandMappedButNotAssigned) {
  const std::array<int, 1> grid{4};
  const std::array<Index, 1> shadow{2};
  const Slice box{{Range::contiguous(0, 39)}};
  const DistSpec spec = DistSpec::block(box, grid, shadow);
  // Interior task 1: assigned 10:19, mapped 8:21.
  EXPECT_EQ(spec.assigned(1), (Slice{{Range::contiguous(10, 19)}}));
  EXPECT_EQ(spec.mapped(1), (Slice{{Range::contiguous(8, 21)}}));
  // Boundary task 0: shadow clamped at the global lower bound.
  EXPECT_EQ(spec.mapped(0), (Slice{{Range::contiguous(0, 11)}}));
  // Mapped overlap is allowed; assigned overlap is not (validated).
  EXPECT_FALSE(spec.mapped(0).intersect(spec.mapped(1)).empty());
}

TEST(DistSpec, Block3DCoversGridDisjointly) {
  const std::array<int, 3> grid{2, 2, 2};
  const std::array<Index, 3> shadow{1, 1, 1};
  const DistSpec spec = DistSpec::block(grid3(8), grid, shadow);
  EXPECT_EQ(spec.task_count(), 8);
  EXPECT_TRUE(spec.fully_assigned());
  // Every point belongs to exactly one assigned section.
  std::set<std::array<Index, 3>> seen;
  for (int t = 0; t < 8; ++t) {
    spec.assigned(t).for_each_column_major([&](std::span<const Index> p) {
      std::array<Index, 3> key{p[0], p[1], p[2]};
      EXPECT_TRUE(seen.insert(key).second);
    });
  }
  EXPECT_EQ(seen.size(), 8u * 8 * 8);
}

TEST(DistSpec, ShadowAccountingMatchesSection6Formula) {
  // §6: an N^3 grid on P = Q^3 tasks with shadow width delta gives
  // (n + 2*delta)^3 local points per task, n = N/Q.
  const std::array<int, 3> grid{2, 2, 2};
  const std::array<Index, 3> shadow{1, 1, 1};
  const DistSpec spec = DistSpec::block(grid3(64), grid, shadow);
  const Index n = 32;
  const Index expected_per_task = (n + 2) * (n + 2) * (n + 2);
  // Interior tasks don't exist in a 2x2x2 grid (every task touches a
  // boundary), so mapped sections are clamped: (n+1)^3 here.
  EXPECT_EQ(spec.mapped(0).element_count(), (n + 1) * (n + 1) * (n + 1));
  // With a 4x4x4 grid the 8 interior tasks see the full (n+2)^3.
  const std::array<int, 3> grid4{4, 4, 4};
  const DistSpec spec4 = DistSpec::block(grid3(64), grid4, shadow);
  Index max_mapped = 0;
  for (int t = 0; t < 64; ++t) {
    max_mapped = std::max(max_mapped, spec4.mapped(t).element_count());
  }
  EXPECT_EQ(max_mapped, (16 + 2) * (16 + 2) * (16 + 2));
  (void)expected_per_task;
}

TEST(DistSpec, MappedTotalExceedsBoxWithShadows) {
  const std::array<Index, 3> shadow{1, 1, 1};
  const DistSpec spec = DistSpec::block_auto(grid3(32), 8, shadow);
  EXPECT_GT(spec.mapped_element_total(), grid3(32).element_count());
  EXPECT_EQ(spec.assigned_element_total(), grid3(32).element_count());
}

TEST(DistSpec, ValidationRejectsOverlappingAssigned) {
  const Slice box{{Range::contiguous(0, 9)}};
  std::vector<TaskSection> sections{
      {Slice{{Range::contiguous(0, 5)}}, Slice{{Range::contiguous(0, 5)}}},
      {Slice{{Range::contiguous(5, 9)}}, Slice{{Range::contiguous(5, 9)}}},
  };
  EXPECT_THROW(DistSpec(box, std::move(sections)), ContractViolation);
}

TEST(DistSpec, ValidationRejectsAssignedOutsideMapped) {
  const Slice box{{Range::contiguous(0, 9)}};
  std::vector<TaskSection> sections{
      {Slice{{Range::contiguous(0, 5)}}, Slice{{Range::contiguous(0, 4)}}},
  };
  EXPECT_THROW(DistSpec(box, std::move(sections)), ContractViolation);
}

TEST(DistSpec, ValidationRejectsMappedOutsideBox) {
  const Slice box{{Range::contiguous(0, 9)}};
  std::vector<TaskSection> sections{
      {Slice{{Range::contiguous(0, 5)}}, Slice{{Range::contiguous(0, 10)}}},
  };
  EXPECT_THROW(DistSpec(box, std::move(sections)), ContractViolation);
}

TEST(DistSpec, PartialAssignmentIsLegalButNotFull) {
  // Elements not assigned to any task have undefined values (§3.1).
  const Slice box{{Range::contiguous(0, 9)}};
  std::vector<TaskSection> sections{
      {Slice{{Range::contiguous(0, 3)}}, Slice{{Range::contiguous(0, 5)}}},
  };
  const DistSpec spec(box, std::move(sections));
  EXPECT_FALSE(spec.fully_assigned());
}

TEST(DistSpec, AdjustRecomputesForNewTaskCount) {
  const std::array<Index, 3> shadow{1, 1, 1};
  const DistSpec spec8 = DistSpec::block_auto(grid3(32), 8, shadow);
  const DistSpec spec6 = spec8.adjust(6);
  EXPECT_EQ(spec6.task_count(), 6);
  EXPECT_TRUE(spec6.fully_assigned());
  // Shadow width is preserved by the recipe.
  EXPECT_GT(spec6.mapped_element_total(), spec6.assigned_element_total());
}

TEST(DistSpec, AdjustOnHandBuiltSpecThrows) {
  const Slice box{{Range::contiguous(0, 9)}};
  std::vector<TaskSection> sections{
      {box, box},
  };
  const DistSpec spec(box, std::move(sections));
  EXPECT_THROW((void)spec.adjust(2), Error);
}

TEST(DistSpec, BlockAutoOneTaskOwnsEverything) {
  const std::array<Index, 3> shadow{0, 0, 0};
  const DistSpec spec = DistSpec::block_auto(grid3(8), 1, shadow);
  EXPECT_EQ(spec.assigned(0), grid3(8));
  EXPECT_EQ(spec.mapped(0), grid3(8));
}

}  // namespace
