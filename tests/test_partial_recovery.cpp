// Localized recovery: the partial-restore path (RestartScope::kPartial)
// and its gating machinery.
//
//   - stream_runs: the section -> stream-contiguous byte-run decomposition
//     that lets a replacement task read ONLY its sections from the
//     task-count-independent array stream.
//   - End-to-end partial restarts under node loss: survivors perform zero
//     checkpoint reads (obs counters), replaced slots stream their
//     sections in, and the resumed field is bit-identical to the
//     failure-free baseline.
//   - The differential property: any seeded (schedule, policy, backend)
//     triple resumed under the partial supervisor fingerprints identically
//     to the same failure under the full-restart supervisor.
//   - Retention pinning: gc_superseded_states can never reclaim a
//     generation a restart is (or will again be) reading.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "apps/solver.hpp"
#include "arch/cluster.hpp"
#include "core/checkpoint_catalog.hpp"
#include "core/partial_restore.hpp"
#include "obs/recorder.hpp"
#include "piofs/volume.hpp"
#include "recovery/failure_schedule.hpp"
#include "recovery/reconfig_policy.hpp"
#include "recovery/supervisor.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms;
using namespace drms::recovery;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::placement_of;

constexpr core::Index kN = 8;
constexpr int kIterations = 12;
constexpr int kCheckpointEvery = 3;

apps::AppSpec tiny_sp() {
  apps::AppSpec spec = apps::AppSpec::sp();
  spec.arrays.resize(2);
  spec.private_bytes = 4 * 1024;
  spec.system_bytes = 4 * 1024;
  spec.text_bytes = 4 * 1024;
  return spec;
}

apps::SolverOptions solver_options() {
  apps::SolverOptions o;
  o.spec = tiny_sp();
  o.n = kN;
  o.iterations = kIterations;
  o.checkpoint_every = kCheckpointEvery;
  o.prefix = "job";
  return o;
}

/// The failure-free fingerprint (computed once; distribution-invariant).
std::uint32_t baseline_crc() {
  static const std::uint32_t crc = [] {
    store::MemoryBackend storage;
    apps::SolverOptions o = solver_options();
    o.prefix.clear();
    core::DrmsEnv env;
    env.storage = &storage;
    auto program = apps::make_program(o, env, 4);
    std::uint32_t out = 0;
    TaskGroup group(placement_of(4));
    const auto run = group.run([&](TaskContext& ctx) {
      const auto outcome = apps::run_solver(*program, ctx, o);
      if (ctx.rank() == 0) {
        out = outcome.field_crc;
      }
    });
    EXPECT_TRUE(run.completed);
    return out;
  }();
  return crc;
}

sim::Machine machine_of(int nodes) {
  sim::Machine m;
  m.node_count = nodes;
  m.server_count = nodes;
  return m;
}

SupervisorOptions supervisor_options(store::StorageBackend& storage) {
  SupervisorOptions o;
  o.solver = solver_options();
  o.env.storage = &storage;
  o.preferred_tasks = 4;
  o.min_tasks = 1;
  return o;
}

FailureEvent kill_event(int launch, std::int64_t it) {
  FailureEvent e;
  e.kind = FailureKind::kKillPool;
  e.launch = launch;
  e.at_iteration = it;
  return e;
}

FailureEvent node_loss_event(int launch, std::int64_t it, int ordinal) {
  FailureEvent e;
  e.kind = FailureKind::kNodeLoss;
  e.launch = launch;
  e.at_iteration = it;
  e.node_ordinal = ordinal;
  return e;
}

core::Slice slice3(core::Index x0, core::Index x1, core::Index y0,
                   core::Index y1, core::Index z0, core::Index z1) {
  std::vector<core::Range> rs;
  rs.push_back(core::Range::contiguous(x0, x1));
  rs.push_back(core::Range::contiguous(y0, y1));
  rs.push_back(core::Range::contiguous(z0, z1));
  return core::Slice(std::move(rs));
}

// ---- stream_runs: section -> byte-run decomposition -------------------------

TEST(StreamRuns, FullBoxIsASingleRunAtOffsetZero) {
  const core::Slice box = test::cube(4);
  const auto runs = core::stream_runs(box, box, sizeof(double));
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].byte_offset, 0u);
  EXPECT_EQ(runs[0].bytes,
            static_cast<std::uint64_t>(box.element_count()) * sizeof(double));
}

TEST(StreamRuns, InnerPrefixExtendsTheRunAcrossCoveredAxes) {
  // Box 4x4x4, column-major (axis 0 fastest). A section covering all of
  // axis 0 but only y=1..2 breaks into one run per z plane, each run
  // spanning the fully-covered axis-0 extent times the y sub-range.
  const core::Slice box = test::cube(4);
  const core::Slice section = slice3(0, 3, 1, 2, 0, 3);
  const auto runs = core::stream_runs(box, section, sizeof(double));
  ASSERT_EQ(runs.size(), 4u);
  std::uint64_t total = 0;
  for (std::size_t z = 0; z < runs.size(); ++z) {
    // Element offset of (0, 1, z) in the 4x4x4 stream is 4 + 16 z.
    EXPECT_EQ(runs[z].byte_offset, (4 + 16 * z) * sizeof(double));
    EXPECT_EQ(runs[z].bytes, 8u * sizeof(double));
    total += runs[z].bytes;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(section.element_count()) *
                       sizeof(double));
}

TEST(StreamRuns, SinglePointIsOneElementRun) {
  const core::Slice box = test::cube(4);
  const core::Slice point = slice3(1, 1, 2, 2, 3, 3);
  const auto runs = core::stream_runs(box, point, sizeof(double));
  ASSERT_EQ(runs.size(), 1u);
  // (1, 2, 3) sits at element 1 + 2*4 + 3*16 = 57 of the stream.
  EXPECT_EQ(runs[0].byte_offset, 57u * sizeof(double));
  EXPECT_EQ(runs[0].bytes, sizeof(double));
}

TEST(StreamRuns, RunsCoverDisjointSortedByteRanges) {
  const core::Slice box = test::cube(5);
  const core::Slice section = slice3(1, 3, 0, 4, 2, 3);
  const auto runs = core::stream_runs(box, section, 4);
  ASSERT_FALSE(runs.empty());
  std::uint64_t total = 0;
  std::uint64_t prev_end = 0;
  for (const auto& r : runs) {
    EXPECT_GE(r.byte_offset, prev_end);  // sorted and non-overlapping
    prev_end = r.byte_offset + r.bytes;
    total += r.bytes;
  }
  EXPECT_EQ(total,
            static_cast<std::uint64_t>(section.element_count()) * 4u);
}

TEST(StreamRuns, SectionOutsideTheBoxIsAContractViolation) {
  const core::Slice box = test::cube(4);
  const core::Slice outside = slice3(0, 3, 1, 4, 0, 3);  // y=4 not in box
  EXPECT_THROW((void)core::stream_runs(box, outside, 8),
               support::ContractViolation);
}

// ---- end-to-end partial restarts --------------------------------------------

TEST(PartialRecovery, NodeLossRestartsPartiallyAndMatchesTheBaseline) {
  // No spare nodes: losing one shrinks t2 to 3 while three of the four
  // capturing slots survive -> partial scope.
  store::MemoryBackend storage;
  arch::EventLog log;
  arch::Cluster cluster(machine_of(4), &log);
  obs::Recorder recorder;
  RecoverySupervisor supervisor(cluster, &log);
  SupervisorOptions o = supervisor_options(storage);
  o.partial_restore = true;
  o.recorder = &recorder;
  o.env.recorder = &recorder;
  FailureSchedule schedule;
  schedule.events.push_back(node_loss_event(0, 5, 2));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_FALSE(report.launches[0].partial);
  EXPECT_TRUE(report.launches[1].from_checkpoint);
  EXPECT_TRUE(report.launches[1].partial);
  EXPECT_EQ(report.launches[1].tasks, 3);
  EXPECT_TRUE(report.outcome.partial_restore);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());

  // The MTTR record carries the scope.
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_TRUE(report.recoveries[0].partial);

  // Survivors performed ZERO checkpoint reads; the replaced slot streamed
  // its sections in.
  EXPECT_GE(recorder.counter("recover.partial.attempted"), 1u);
  EXPECT_GE(recorder.counter("recover.partial.completed"), 1u);
  EXPECT_EQ(recorder.counter("recover.partial.survivor_read_bytes"), 0u);
  EXPECT_GT(recorder.counter("recover.partial.restore_read_bytes"), 0u);
  EXPECT_GT(recorder.counter("recover.partial.lost_sections"), 0u);
  EXPECT_GT(recorder.counter("recover.partial.adopted_sections"), 0u);
}

TEST(PartialRecovery, PoolKillForcesFullScope) {
  // kKillPool wipes every slot's memory: the snapshot has no survivors to
  // adopt from, so the supervisor must choose a full restart even with
  // partial_restore on.
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(6), nullptr);
  obs::Recorder recorder;
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  o.partial_restore = true;
  o.recorder = &recorder;
  FailureSchedule schedule;
  schedule.events.push_back(kill_event(0, 5));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_TRUE(report.launches[1].from_checkpoint);
  EXPECT_FALSE(report.launches[1].partial);
  EXPECT_FALSE(report.outcome.partial_restore);
  EXPECT_EQ(recorder.counter("recover.partial.attempted"), 0u);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(PartialRecovery, SameCountPolicyReplacesTheLostSlot) {
  // A spare node lets SameCountPolicy relaunch at t2 == t1 == 4: the
  // replacement task streams slot 2's sections in while the other three
  // slots adopt from the retained snapshot.
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(5), nullptr);
  obs::Recorder recorder;
  RecoverySupervisor supervisor(cluster);
  SameCountPolicy policy;
  SupervisorOptions o = supervisor_options(storage);
  o.policy = &policy;
  o.partial_restore = true;
  o.recorder = &recorder;
  o.env.recorder = &recorder;
  FailureSchedule schedule;
  schedule.events.push_back(node_loss_event(0, 5, 2));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_TRUE(report.launches[1].partial);
  EXPECT_EQ(report.launches[1].tasks, 4);
  EXPECT_EQ(report.reconfigurations, 0);
  EXPECT_EQ(recorder.counter("recover.partial.survivor_read_bytes"), 0u);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(PartialRecovery, DeltaGenerationRestoresPartiallyThroughTheChain) {
  // With block-level deltas on, the generation chosen after the failure
  // (g000006) is a delta chained to the g000003 full: the partial path
  // reads base runs plus only the delta blocks touching the lost
  // sections.
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(4), nullptr);
  obs::Recorder recorder;
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  o.partial_restore = true;
  o.env.delta = true;
  o.recorder = &recorder;
  o.env.recorder = &recorder;
  FailureSchedule schedule;
  schedule.events.push_back(node_loss_event(0, 7, 2));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_TRUE(report.launches[1].partial);
  EXPECT_EQ(report.launches[1].restart_prefix, "job.g000006");
  EXPECT_EQ(recorder.counter("recover.partial.survivor_read_bytes"), 0u);
  EXPECT_GT(recorder.counter("recover.partial.restore_read_bytes"), 0u);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(PartialRecovery, PartialRestoreIsStrictlyCheaperThanFull) {
  // Same single-node-loss failure on a charging (PIOFS + paper cost
  // model) backend, full versus partial scope: the partial restart reads
  // only the lost slot's sections, so its simulated restore time must be
  // strictly below the full restart's.
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  const auto run_once = [&cost](bool partial) {
    piofs::Volume volume(4);
    store::PiofsBackend storage(volume, &cost);
    arch::Cluster cluster(machine_of(4), nullptr);
    RecoverySupervisor supervisor(cluster);
    SupervisorOptions o = supervisor_options(storage);
    o.partial_restore = partial;
    FailureSchedule schedule;
    schedule.events.push_back(node_loss_event(0, 5, 2));
    return supervisor.run(o, schedule);
  };

  const RecoveryReport full = run_once(false);
  const RecoveryReport part = run_once(true);
  ASSERT_TRUE(full.completed);
  ASSERT_TRUE(part.completed);
  ASSERT_EQ(full.launches.size(), 2u);
  ASSERT_EQ(part.launches.size(), 2u);
  EXPECT_FALSE(full.launches[1].partial);
  EXPECT_TRUE(part.launches[1].partial);

  // Identical numerics either way...
  EXPECT_EQ(full.outcome.field_crc, baseline_crc());
  EXPECT_EQ(part.outcome.field_crc, baseline_crc());

  // ...but a strictly cheaper restore.
  EXPECT_GT(full.launches[1].restore_seconds, 0.0);
  EXPECT_GT(part.launches[1].restore_seconds, 0.0);
  EXPECT_LT(part.launches[1].restore_seconds,
            full.launches[1].restore_seconds);
}

// ---- the differential property ----------------------------------------------

TEST(PartialRecovery, DifferentialSeededSweepMatchesFullRestart) {
  // Seeded (schedule, machine, backend) triples, each run under BOTH
  // supervisors: whatever mix of kills, node losses, torn and corrupt
  // generations the seed produces, the partial-capable supervisor must
  // fingerprint bit-identically to the full-restart one (and to the
  // failure-free baseline).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ScheduleShape shape;
    shape.iterations = kIterations;
    shape.checkpoint_every = kCheckpointEvery;
    const FailureSchedule schedule = FailureSchedule::random(seed, shape);

    std::uint32_t crc[2] = {0, 0};
    for (int partial = 0; partial < 2; ++partial) {
      store::MemoryBackend inner;
      store::FaultInjectionBackend storage(inner);
      arch::Cluster cluster(machine_of(seed % 2 == 0 ? 4 : 6), nullptr);
      RecoverySupervisor supervisor(cluster);
      SupervisorOptions o = supervisor_options(storage);
      o.fault = &storage;
      o.seed = seed + 1;
      o.partial_restore = partial == 1;
      o.backoff_base = std::chrono::microseconds(1);

      const RecoveryReport report = supervisor.run(o, schedule);
      ASSERT_TRUE(report.completed)
          << "seed " << seed << " partial " << partial << " schedule "
          << schedule.describe();
      crc[partial] = report.outcome.field_crc;
    }
    EXPECT_EQ(crc[1], crc[0])
        << "seed " << seed << " schedule " << schedule.describe();
    EXPECT_EQ(crc[1], baseline_crc())
        << "seed " << seed << " schedule " << schedule.describe();
  }
}

TEST(PartialRecovery, DifferentialSameCountSweepOnPiofs) {
  // The same differential property with the other policy/backend corner:
  // SameCountPolicy over a PIOFS volume with spare nodes.
  SameCountPolicy policy;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    ScheduleShape shape;
    shape.iterations = kIterations;
    shape.checkpoint_every = kCheckpointEvery;
    const FailureSchedule schedule = FailureSchedule::random(seed, shape);

    std::uint32_t crc[2] = {0, 0};
    for (int partial = 0; partial < 2; ++partial) {
      test::TestVolume vol(4);
      store::FaultInjectionBackend storage(vol.backend());
      arch::Cluster cluster(machine_of(6), nullptr);
      RecoverySupervisor supervisor(cluster);
      SupervisorOptions o = supervisor_options(storage);
      o.policy = &policy;
      o.fault = &storage;
      o.seed = seed + 1;
      o.partial_restore = partial == 1;
      o.backoff_base = std::chrono::microseconds(1);

      const RecoveryReport report = supervisor.run(o, schedule);
      ASSERT_TRUE(report.completed)
          << "seed " << seed << " partial " << partial << " schedule "
          << schedule.describe();
      crc[partial] = report.outcome.field_crc;
    }
    EXPECT_EQ(crc[1], crc[0])
        << "seed " << seed << " schedule " << schedule.describe();
    EXPECT_EQ(crc[1], baseline_crc())
        << "seed " << seed << " schedule " << schedule.describe();
  }
}

// ---- retention pinning ------------------------------------------------------

TEST(PartialRecovery, GcPinnedGenerationSurvivesRetention) {
  // Run to completion (generations g3, g6, g9 on the volume), then apply
  // an aggressive keep-1 retention pass with g000003 pinned: the newest
  // generation AND the pin must both survive.
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(6), nullptr);
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  const RecoveryReport report = supervisor.run(o);
  ASSERT_TRUE(report.completed);

  const std::string app = o.solver.spec.name;
  const std::string filter = o.solver.prefix + ".g";
  ASSERT_EQ(core::restart_candidates(storage, app, filter).size(), 3u);

  const std::vector<std::string> pins = {"job.g000003"};
  (void)core::gc_superseded_states(storage, app, filter, 1, pins);
  const auto kept = core::restart_candidates(storage, app, filter);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].prefix, "job.g000009");  // newest-first order
  EXPECT_EQ(kept[1].prefix, "job.g000003");

  // Without the pin the same pass trims to the single newest state.
  (void)core::gc_superseded_states(storage, app, filter, 1);
  const auto trimmed = core::restart_candidates(storage, app, filter);
  ASSERT_EQ(trimmed.size(), 1u);
  EXPECT_EQ(trimmed[0].prefix, "job.g000009");
}

TEST(PartialRecovery, RetentionCannotReclaimTheGenerationBeingRestored) {
  // Regression for the reclaim-under-restore hazard: with keep_last_k=1
  // and a corrupt-but-committed g000006 occupying the keep-newest slot,
  // launch 2 restores from g000003 and dies before committing anything
  // new. The between-attempt retention pass must NOT reclaim g000003 (the
  // generation the next attempt re-reads) just because the corrupt state
  // outranks it by SOP — the selection pin keeps it alive, so launch 3
  // restarts from the checkpoint instead of from scratch.
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(6), nullptr);
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  o.keep_last_k = 1;
  o.backoff_base = std::chrono::microseconds(1);
  FailureSchedule schedule;
  schedule.events.push_back(kill_event(0, 5));
  FailureEvent corrupt;
  corrupt.kind = FailureKind::kCorruptNewest;
  corrupt.launch = 1;
  corrupt.at_iteration = 7;
  schedule.events.push_back(corrupt);
  schedule.events.push_back(kill_event(1, 7));
  schedule.events.push_back(kill_event(2, 4));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 4u);
  // Launch 2 fell back past the corrupt g000006 to g000003...
  EXPECT_EQ(report.launches[2].restart_prefix, "job.g000003");
  EXPECT_TRUE(report.launches[2].killed);
  // ...and after its death, g000003 is still there for launch 3.
  EXPECT_TRUE(report.launches[3].from_checkpoint);
  EXPECT_EQ(report.launches[3].restart_prefix, "job.g000003");
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

}  // namespace
