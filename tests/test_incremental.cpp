// Tests for incremental checkpointing: unchanged arrays keep their file,
// changed arrays are restreamed, and restarts from incremental
// checkpoints remain bit-exact.
#include <gtest/gtest.h>

#include <array>

#include "core/array_fingerprint.hpp"
#include "core/drms_context.hpp"
#include "rt/task_group.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::placement_of;
using drms::test::tag_of;

constexpr Index kN = 8;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 16 * 1024;
  m.system_bytes = 16 * 1024;
  return m;
}

TEST(ArrayFingerprint, StableAndSensitive) {
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  DistArray array("u", cube(kN), sizeof(double), kP);
  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(cube(kN), kP, std::vector<Index>(3, 1)));
    }
    ctx.barrier();
    const Slice& mine = array.distribution().assigned(ctx.rank());
    mine.for_each_column_major([&](std::span<const Index> p) {
      array.local(ctx.rank()).set_f64(p, tag_of(p));
    });
    ctx.barrier();

    const std::uint32_t fp1 = array_fingerprint(ctx, array);
    const std::uint32_t fp2 = array_fingerprint(ctx, array);
    EXPECT_EQ(fp1, fp2) << "fingerprint must be deterministic";

    // Mutate one element on one task; the fingerprint must change for
    // EVERY task (it is collective-identical).
    if (ctx.rank() == 1) {
      const Slice& assigned = array.distribution().assigned(1);
      std::vector<Index> point;
      for (int k = 0; k < assigned.rank(); ++k) {
        point.push_back(assigned.range(k).first());
      }
      array.local(1).set_f64(point, -1234.5);
    }
    ctx.barrier();
    const std::uint32_t fp3 = array_fingerprint(ctx, array);
    EXPECT_NE(fp1, fp3);
  });
  EXPECT_TRUE(result.completed);
}

/// Two-array app: "hot" changes every iteration, "cold" never does.
struct IncApp {
  static void run(DrmsProgram& program, TaskContext& ctx, int iterations,
                  const std::string& prefix) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();

    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
    DistArray& hot = drms.create_array("hot", lo, hi);
    DistArray& cold = drms.create_array("cold", lo, hi);
    const DistSpec spec = DistSpec::block_auto(
        cube(kN), ctx.size(), std::vector<Index>(3, 0));
    drms.distribute(hot, spec);
    drms.distribute(cold, spec);

    if (!drms.restarted()) {
      const Slice& mine = spec.assigned(ctx.rank());
      mine.for_each_column_major([&](std::span<const Index> p) {
        hot.local(ctx.rank()).set_f64(p, tag_of(p));
        cold.local(ctx.rank()).set_f64(p, 2.0 * tag_of(p));
      });
      ctx.barrier();
    }

    while (it < iterations) {
      if (it > 0 && it % 2 == 0) {
        (void)drms.reconfig_checkpoint(prefix);
      }
      const Slice& mine = hot.distribution().assigned(ctx.rank());
      mine.for_each_column_major([&](std::span<const Index> p) {
        hot.local(ctx.rank())
            .set_f64(p, hot.local(ctx.rank()).get_f64(p) * 1.01);
      });
      ctx.barrier();
      ++it;
    }
  }
};

TEST(IncrementalCheckpoint, SkipsUnchangedArrays) {
  Volume volume(16);
  DrmsEnv env;
  env.storage = &volume.backend();
  env.incremental = true;
  DrmsProgram program("inc", env, tiny_segment(), 4);
  TaskGroup group(placement_of(4));
  const auto result = group.run([&](TaskContext& ctx) {
    IncApp::run(program, ctx, 7, "inc.ck");  // checkpoints at it=2,4,6
  });
  ASSERT_TRUE(result.completed);

  const IncrementalState state = program.incremental_state();
  EXPECT_EQ(state.prefix, "inc.ck");
  // The last (third) checkpoint under the same prefix: "cold" unchanged
  // since the second one -> skipped; "hot" changed -> rewritten.
  EXPECT_EQ(state.arrays_skipped, 1);
  EXPECT_EQ(state.bytes_skipped,
            static_cast<std::uint64_t>(cube(kN).element_count()) *
                sizeof(double));
}

TEST(IncrementalCheckpoint, FirstCheckpointWritesEverything) {
  Volume volume(16);
  DrmsEnv env;
  env.storage = &volume.backend();
  env.incremental = true;
  DrmsProgram program("inc", env, tiny_segment(), 3);
  TaskGroup group(placement_of(3));
  const auto result = group.run([&](TaskContext& ctx) {
    IncApp::run(program, ctx, 3, "inc.ck");  // exactly one checkpoint
  });
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(program.incremental_state().arrays_skipped, 0);
}

TEST(IncrementalCheckpoint, RestartFromIncrementalStateIsExact) {
  // Reference: non-incremental run to completion.
  const auto run_to = [&](Volume& volume, int tasks, int iterations,
                          bool incremental, const std::string& restart) {
    DrmsEnv env;
    env.storage = &volume.backend();
    env.incremental = incremental;
    env.restart_prefix = restart;
    DrmsProgram program("inc", env, tiny_segment(), tasks);
    TaskGroup group(placement_of(tasks));
    double sum = 0;
    const auto result = group.run([&](TaskContext& ctx) {
      IncApp::run(program, ctx, iterations, "inc.ck");
      // Deterministic digest: rank 0 reads the whole "hot" array through
      // the distribution in global order.
      if (ctx.rank() == 0) {
        DrmsContext view(program, ctx);
        DistArray& hot = view.array("hot");
        cube(kN).for_each_column_major([&](std::span<const Index> p) {
          sum += hot.get_f64(p);
        });
      }
      ctx.barrier();
    });
    EXPECT_TRUE(result.completed);
    return sum;
  };

  Volume ref_volume(16);
  const double reference = run_to(ref_volume, 4, 7, false, "");

  Volume volume(16);
  (void)run_to(volume, 4, 7, true, "");  // incremental checkpoints
  // Restart from the (partially skipped) it=6 state on 5 tasks and run
  // one more iteration, like the reference's final iteration.
  const double resumed = run_to(volume, 5, 7, true, "inc.ck");
  EXPECT_EQ(resumed, reference);
}

TEST(IncrementalCheckpoint, PrefixChangeInvalidatesFingerprints) {
  Volume volume(16);
  DrmsEnv env;
  env.storage = &volume.backend();
  env.incremental = true;
  DrmsProgram program("inc", env, tiny_segment(), 2);
  TaskGroup group(placement_of(2));
  const auto result = group.run([&](TaskContext& ctx) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
    DistArray& a = drms.create_array("a", lo, hi);
    drms.distribute(a, DistSpec::block_auto(cube(kN), 2,
                                            std::vector<Index>(3, 0)));
    (void)drms.reconfig_checkpoint("first");
    // Same content, DIFFERENT prefix: must not skip (the file under the
    // new prefix does not exist yet).
    (void)drms.reconfig_checkpoint("second");
  });
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(program.incremental_state().arrays_skipped, 0);
  EXPECT_TRUE(checkpoint_exists(volume, "second"));
  EXPECT_EQ(drms_state_size(volume, "second"),
            drms_state_size(volume, "first"));
}

}  // namespace
