// Shared helpers for the runtime/core integration tests.
#pragma once

#include <array>
#include <span>

#include <string>
#include <utility>
#include <vector>

#include "core/dist_array.hpp"
#include "core/dist_spec.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"
#include "store/piofs_backend.hpp"

namespace drms::test {

/// A PIOFS volume paired with its storage-backend view. Tests construct
/// one wherever the seed used a bare volume: the engines and the catalog
/// consume the backend (through the implicit conversions), while
/// corruption injection and host-directory migration keep access to the
/// underlying volume via piofs().
class TestVolume {
 public:
  explicit TestVolume(int servers) : volume_(servers), backend_(volume_) {}
  TestVolume(const TestVolume&) = delete;
  TestVolume& operator=(const TestVolume&) = delete;

  operator store::StorageBackend&() { return backend_; }
  operator const store::StorageBackend&() const { return backend_; }

  [[nodiscard]] store::PiofsBackend& backend() { return backend_; }
  [[nodiscard]] piofs::Volume& piofs() { return volume_; }

  // Pass-throughs for the direct file operations the tests perform.
  store::FileHandle create(const std::string& name) {
    return backend_.create(name);
  }
  [[nodiscard]] store::FileHandle open(const std::string& name) const {
    return backend_.open(name);
  }
  [[nodiscard]] bool exists(const std::string& name) const {
    return backend_.exists(name);
  }
  void remove(const std::string& name) { backend_.remove(name); }
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const {
    return backend_.list(prefix);
  }
  [[nodiscard]] int server_count() const { return volume_.server_count(); }

 private:
  piofs::Volume volume_;
  store::PiofsBackend backend_;
};

inline sim::Placement placement_of(int tasks) {
  sim::Machine machine = sim::Machine::paper_sp16();
  if (tasks > machine.node_count) {
    machine.node_count = tasks;
    machine.server_count = tasks;
  }
  return sim::Placement::one_per_node(machine, tasks);
}

/// Position-identifying value: distinct for every multi-index.
inline double tag_of(std::span<const core::Index> p) {
  double v = 0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    v = v * 1000 + static_cast<double>(p[k] + 1);
  }
  return v;
}

/// Fill task `rank`'s assigned section with the tag pattern.
inline void fill_assigned_tagged(core::DistArray& array, int rank) {
  const core::Slice& assigned = array.distribution().assigned(rank);
  core::LocalArray& local = array.local(rank);
  assigned.for_each_column_major([&](std::span<const core::Index> p) {
    local.set_f64(p, tag_of(p));
  });
}

/// Check that task `rank`'s entire MAPPED section carries the tag pattern
/// (i.e., shadows were updated consistently too). Returns mismatch count.
inline int count_mapped_mismatches(const core::DistArray& array, int rank) {
  const core::Slice& mapped = array.distribution().mapped(rank);
  const core::LocalArray& local = array.local(rank);
  int mismatches = 0;
  mapped.for_each_column_major([&](std::span<const core::Index> p) {
    if (local.get_f64(p) != tag_of(p)) {
      ++mismatches;
    }
  });
  return mismatches;
}

inline core::Slice cube(core::Index n, int rank_dims = 3) {
  std::vector<core::Range> ranges;
  for (int k = 0; k < rank_dims; ++k) {
    ranges.push_back(core::Range::contiguous(0, n - 1));
  }
  return core::Slice(std::move(ranges));
}

}  // namespace drms::test
