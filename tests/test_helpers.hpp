// Shared helpers for the runtime/core integration tests.
#pragma once

#include <array>
#include <span>

#include "core/dist_array.hpp"
#include "core/dist_spec.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"

namespace drms::test {

inline sim::Placement placement_of(int tasks) {
  sim::Machine machine = sim::Machine::paper_sp16();
  if (tasks > machine.node_count) {
    machine.node_count = tasks;
    machine.server_count = tasks;
  }
  return sim::Placement::one_per_node(machine, tasks);
}

/// Position-identifying value: distinct for every multi-index.
inline double tag_of(std::span<const core::Index> p) {
  double v = 0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    v = v * 1000 + static_cast<double>(p[k] + 1);
  }
  return v;
}

/// Fill task `rank`'s assigned section with the tag pattern.
inline void fill_assigned_tagged(core::DistArray& array, int rank) {
  const core::Slice& assigned = array.distribution().assigned(rank);
  core::LocalArray& local = array.local(rank);
  assigned.for_each_column_major([&](std::span<const core::Index> p) {
    local.set_f64(p, tag_of(p));
  });
}

/// Check that task `rank`'s entire MAPPED section carries the tag pattern
/// (i.e., shadows were updated consistently too). Returns mismatch count.
inline int count_mapped_mismatches(const core::DistArray& array, int rank) {
  const core::Slice& mapped = array.distribution().mapped(rank);
  const core::LocalArray& local = array.local(rank);
  int mismatches = 0;
  mapped.for_each_column_major([&](std::span<const core::Index> p) {
    if (local.get_f64(p) != tag_of(p)) {
      ++mismatches;
    }
  });
  return mismatches;
}

inline core::Slice cube(core::Index n, int rank_dims = 3) {
  std::vector<core::Range> ranges;
  for (int k = 0; k < rank_dims; ++k) {
    ranges.push_back(core::Range::contiguous(0, n - 1));
  }
  return core::Slice(std::move(ranges));
}

}  // namespace drms::test
