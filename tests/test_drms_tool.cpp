// End-to-end tests of the drms_tool operator CLI, exercised as a real
// child process against a checkpoint store exported to a host directory.
// The deep-verify coverage flips one payload byte on the host and checks
// that `verify` stays green (structural checks cannot see a bit flip)
// while `verify --deep` exits 1 and names the damage.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "core/checkpoint_catalog.hpp"
#include "core/drms_context.hpp"
#include "rt/task_group.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::placement_of;

namespace fs = std::filesystem;

/// Exit status of `drms_tool <args>` (the binary path comes from the
/// build system).
int run_tool(const std::string& args) {
  const std::string command =
      std::string(DRMS_TOOL_PATH) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_NE(status, -1) << command;
  return WEXITSTATUS(status);
}

/// Captured stdout of `drms_tool <args>`.
std::string run_tool_output(const std::string& args) {
  const std::string command =
      std::string(DRMS_TOOL_PATH) + " " + args + " 2> /dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  std::array<char, 256> buf{};
  while (pipe != nullptr &&
         std::fgets(buf.data(), static_cast<int>(buf.size()), pipe)) {
    out += buf.data();
  }
  if (pipe != nullptr) {
    ::pclose(pipe);
  }
  return out;
}

/// A fresh host directory holding one exported DRMS state ("app.even",
/// arrays "u"), removed on destruction.
class ExportedState {
 public:
  explicit ExportedState(int generations = 1)
      : dir_(fs::temp_directory_path() /
             ("drms_tool_test_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    Volume volume(16);
    AppSegmentModel segment;
    segment.static_local_bytes = 8 * 1024;
    segment.system_bytes = 8 * 1024;
    DrmsEnv env;
    env.storage = &volume.backend();
    DrmsProgram program("app", env, segment, 2);
    TaskGroup group(placement_of(2));
    const auto result = group.run([&](TaskContext& ctx) {
      DrmsContext drms(program, ctx);
      drms.initialize();
      const std::array<Index, 3> lo{0, 0, 0};
      const std::array<Index, 3> hi{5, 5, 5};
      DistArray& u = drms.create_array("u", lo, hi);
      drms.distribute(u, DistSpec::block_auto(cube(6), 2,
                                              std::vector<Index>(3, 0)));
      (void)drms.reconfig_checkpoint("app.even");
      // Extra committed generations of the same application (newer SOPs)
      // supersede "app.even" in restart-candidate order.
      for (int g = 1; g < generations; ++g) {
        (void)drms.reconfig_checkpoint("app.g" + std::to_string(g));
      }
    });
    EXPECT_TRUE(result.completed);
    volume.piofs().export_to_directory("", dir_.string());
  }
  ~ExportedState() { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  /// Flip one byte of the exported array file in place.
  void corrupt_array() const {
    const fs::path victim = dir_ / array_file_name("app.even", "u");
    ASSERT_TRUE(fs::exists(victim)) << victim;
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(96);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= '\x40';
    f.seekp(96);
    f.write(&byte, 1);
  }

 private:
  fs::path dir_;
};

TEST(DrmsTool, VerifyPassesOnACleanExport) {
  ExportedState state;
  EXPECT_EQ(run_tool("verify " + state.dir()), 0);
  EXPECT_EQ(run_tool("verify --deep " + state.dir()), 0);
  EXPECT_EQ(run_tool("verify --deep " + state.dir() + " app.even"), 0);
}

TEST(DrmsTool, DeepVerifyCatchesABitFlipShallowMisses) {
  ExportedState state;
  state.corrupt_array();
  // Structural checks (manifest, sizes, headers) cannot see a bit flip
  // inside an array stream...
  EXPECT_EQ(run_tool("verify " + state.dir()), 0);
  // ...the deep pass reads every byte back and must refuse the state.
  EXPECT_EQ(run_tool("verify --deep " + state.dir()), 1);
  EXPECT_EQ(run_tool("verify --deep " + state.dir() + " app.even"), 1);
}

TEST(DrmsTool, DeepFlagWithoutDirectoryIsUsage) {
  EXPECT_EQ(run_tool("verify --deep"), 2);
}

TEST(DrmsTool, VerifyUnknownPrefixExits1) {
  ExportedState state;
  EXPECT_EQ(run_tool("verify --deep " + state.dir() + " nothing"), 1);
}

TEST(DrmsTool, GcDryRunReportsTornStateWithoutDeleting) {
  ExportedState state;
  // Plant a torn state: a segment file with no commit manifest, as left
  // by a crash before publication.
  const fs::path torn = fs::path(state.dir()) / segment_file_name("app.torn");
  {
    std::ofstream f(torn, std::ios::binary);
    f.write("torn", 4);
  }
  const std::string report = run_tool_output("gc --dry-run " + state.dir());
  EXPECT_NE(report.find("app.torn"), std::string::npos) << report;
  EXPECT_NE(report.find("TORN"), std::string::npos) << report;
  EXPECT_NE(report.find("nothing deleted"), std::string::npos) << report;
  // The dry run must not have touched the directory.
  EXPECT_TRUE(fs::exists(torn));
  EXPECT_EQ(run_tool("verify --deep " + state.dir() + " app.even"), 0);
  // The real gc reclaims the torn file and keeps the committed state.
  EXPECT_EQ(run_tool("gc " + state.dir()), 0);
  EXPECT_FALSE(fs::exists(torn));
  EXPECT_EQ(run_tool("verify --deep " + state.dir() + " app.even"), 0);
}

TEST(DrmsTool, GcDryRunReportsSupersededGenerations) {
  ExportedState state(/*generations=*/3);
  const std::string report = run_tool_output("gc --dry-run " + state.dir());
  // Three committed generations of "app": two are superseded by the
  // newest and eligible for retention — but dry-run deletes nothing.
  EXPECT_NE(report.find("superseded"), std::string::npos) << report;
  EXPECT_NE(report.find("2 superseded states"), std::string::npos) << report;
  EXPECT_EQ(run_tool("verify --deep " + state.dir()), 0);
}

TEST(DrmsTool, GcDryRunWithoutDirectoryIsUsage) {
  EXPECT_EQ(run_tool("gc --dry-run"), 2);
}

TEST(DrmsTool, RestartPlanPrintsPerSlotRuns) {
  ExportedState state;
  const std::string report =
      run_tool_output("info --restart-plan 0 " + state.dir() + " app.even");
  EXPECT_NE(report.find("restart plan: app.even, lost slot 0 of 2"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("u"), std::string::npos) << report;
  // Stream runs start at the beginning of slot 0's assignment.
  EXPECT_NE(report.find("[0,"), std::string::npos) << report;
  EXPECT_NE(report.find("total:"), std::string::npos) << report;
  // One lost slot of two reads half the array stream — the whole point
  // of the report is this ratio.
  EXPECT_NE(report.find("(50.0%)"), std::string::npos) << report;
  EXPECT_NE(report.find("replicated segment"), std::string::npos) << report;
  // Both slots of the two-task state have a plan.
  EXPECT_EQ(run_tool("info --restart-plan 1 " + state.dir() + " app.even"), 0);
}

TEST(DrmsTool, RestartPlanRejectsOutOfRangeSlot) {
  ExportedState state;
  EXPECT_EQ(run_tool("info --restart-plan 2 " + state.dir() + " app.even"), 2);
  EXPECT_EQ(run_tool("info --restart-plan -1 " + state.dir() + " app.even"),
            2);
}

TEST(DrmsTool, RestartPlanUnknownPrefixExits1) {
  ExportedState state;
  EXPECT_EQ(run_tool("info --restart-plan 0 " + state.dir() + " nothing"), 1);
}

TEST(DrmsTool, RestartPlanWithMissingArgumentsIsUsage) {
  ExportedState state;
  // No prefix, no slot, non-numeric slot: all usage errors.
  EXPECT_EQ(run_tool("info --restart-plan 0 " + state.dir()), 2);
  EXPECT_EQ(run_tool("info --restart-plan " + state.dir() + " app.even"), 2);
}

}  // namespace
