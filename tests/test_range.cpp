// Tests for the Range algebra (§3.1): construction, membership,
// intersection (including the paper's worked example), splitting, and
// normalization — plus parameterized property sweeps.
#include <gtest/gtest.h>

#include "core/range.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using namespace drms::core;
using drms::support::ContractViolation;

TEST(Range, EmptyRange) {
  const Range r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0);
  EXPECT_FALSE(r.contains(0));
  EXPECT_EQ(r.to_string(), "{}");
}

TEST(Range, ContiguousBasics) {
  const Range r = Range::contiguous(3, 7);
  EXPECT_EQ(r.size(), 5);
  EXPECT_EQ(r.first(), 3);
  EXPECT_EQ(r.last(), 7);
  EXPECT_TRUE(r.contains(5));
  EXPECT_FALSE(r.contains(8));
  EXPECT_TRUE(r.is_contiguous());
  EXPECT_EQ(r.to_string(), "3:7");
  EXPECT_EQ(r.position_of(3), 0);
  EXPECT_EQ(r.position_of(7), 4);
  EXPECT_FALSE(r.position_of(8).has_value());
}

TEST(Range, ReversedBoundsAreEmpty) {
  EXPECT_TRUE(Range::contiguous(5, 4).empty());
}

TEST(Range, StridedBasics) {
  const Range r = Range::strided(0, 10, 3);  // {0,3,6,9}
  EXPECT_EQ(r.size(), 4);
  EXPECT_EQ(r.at(2), 6);
  EXPECT_TRUE(r.contains(9));
  EXPECT_FALSE(r.contains(10));
  EXPECT_FALSE(r.is_contiguous());
  EXPECT_TRUE(r.is_regular());
  EXPECT_EQ(r.stride(), 3);
  EXPECT_EQ(r.to_string(), "0:9:3");
}

TEST(Range, StrideMustBePositive) {
  EXPECT_THROW((void)Range::strided(0, 10, 0), ContractViolation);
}

TEST(Range, IndexListBasics) {
  const Range r = Range::of_indices({8, 9, 10, 12});
  EXPECT_EQ(r.size(), 4);
  EXPECT_EQ(r.at(3), 12);
  EXPECT_TRUE(r.contains(10));
  EXPECT_FALSE(r.contains(11));
  EXPECT_EQ(r.to_string(), "{8,9,10,12}");
}

TEST(Range, IndexListMustBeStrictlyIncreasing) {
  EXPECT_THROW((void)Range::of_indices({1, 1}), ContractViolation);
  EXPECT_THROW((void)Range::of_indices({3, 2}), ContractViolation);
}

TEST(Range, ArithmeticListNormalizesToRegular) {
  const Range r = Range::of_indices({2, 5, 8, 11});
  EXPECT_TRUE(r.is_regular());
  EXPECT_EQ(r.stride(), 3);
  EXPECT_EQ(r, Range::strided(2, 11, 3));
}

TEST(Range, IntersectionContiguous) {
  const Range a = Range::contiguous(0, 10);
  const Range b = Range::contiguous(5, 20);
  EXPECT_EQ(a * b, Range::contiguous(5, 10));
  EXPECT_TRUE((a * Range::contiguous(11, 12)).empty());
}

TEST(Range, IntersectionMixed) {
  const Range a = Range::strided(0, 20, 2);      // evens
  const Range b = Range::contiguous(3, 9);       // 3..9
  EXPECT_EQ(a * b, Range::of_indices({4, 6, 8}));

  const Range c = Range::of_indices({1, 4, 6, 22});
  EXPECT_EQ(a * c, Range::of_indices({4, 6}));
}

TEST(Range, IntersectionIsCommutative) {
  const Range a = Range::strided(0, 30, 3);
  const Range b = Range::of_indices({3, 5, 9, 12, 13});
  EXPECT_EQ(a * b, b * a);
}

TEST(Range, PaperWorkedExample) {
  // Figure 2's slice (3): rows {8,9,10,12}, columns {16,18,19,20,22}.
  const Range rows = Range::of_indices({8, 9, 10, 12});
  const Range cols = Range::of_indices({16, 18, 19, 20, 22});
  EXPECT_EQ(rows.size(), 4);
  EXPECT_EQ(cols.size(), 5);
  // Intersection with a regular section picks out the common elements.
  EXPECT_EQ(rows * Range::contiguous(9, 11), Range::of_indices({9, 10}));
}

TEST(Range, TakeAndDrop) {
  const Range r = Range::strided(10, 30, 5);  // {10,15,20,25,30}
  EXPECT_EQ(r.take(2), Range::strided(10, 15, 5));
  EXPECT_EQ(r.drop(2), Range::strided(20, 30, 5));
  EXPECT_TRUE(r.take(0).empty());
  EXPECT_EQ(r.drop(0), r);
  EXPECT_THROW((void)r.take(6), ContractViolation);
}

TEST(Range, SplitHalf) {
  const auto [lo, hi] = Range::contiguous(0, 8).split_half();  // 9 elements
  EXPECT_EQ(lo, Range::contiguous(0, 4));  // ceil(9/2) = 5
  EXPECT_EQ(hi, Range::contiguous(5, 8));

  const auto [l1, h1] = Range::single(3).split_half();
  EXPECT_EQ(l1, Range::single(3));
  EXPECT_TRUE(h1.empty());
}

TEST(Range, ToVector) {
  EXPECT_EQ(Range::strided(1, 7, 2).to_vector(),
            (std::vector<Index>{1, 3, 5, 7}));
}

/// Property sweep: intersection behaves as set intersection for randomized
/// range pairs of every representation.
class RangeIntersectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RangeIntersectionProperty, MatchesSetSemantics) {
  drms::support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto random_range = [&rng]() -> Range {
    switch (rng.uniform_int(0, 2)) {
      case 0:
        return Range::contiguous(rng.uniform_int(-20, 20),
                                 rng.uniform_int(-20, 40));
      case 1:
        return Range::strided(rng.uniform_int(-20, 0),
                              rng.uniform_int(0, 40),
                              rng.uniform_int(1, 5));
      default: {
        std::vector<Index> v;
        Index x = rng.uniform_int(-20, 0);
        const Index n = rng.uniform_int(0, 15);
        for (Index i = 0; i < n; ++i) {
          x += rng.uniform_int(1, 4);
          v.push_back(x);
        }
        return Range::of_indices(std::move(v));
      }
    }
  };

  for (int iter = 0; iter < 50; ++iter) {
    const Range a = random_range();
    const Range b = random_range();
    const Range i = a * b;
    // Every element of the intersection is in both; no element of a that
    // is also in b is missing; order is increasing.
    Index prev = std::numeric_limits<Index>::min();
    for (Index k = 0; k < i.size(); ++k) {
      const Index v = i.at(k);
      EXPECT_TRUE(a.contains(v));
      EXPECT_TRUE(b.contains(v));
      EXPECT_GT(v, prev);
      prev = v;
    }
    Index common = 0;
    for (Index k = 0; k < a.size(); ++k) {
      if (b.contains(a.at(k))) {
        ++common;
      }
    }
    EXPECT_EQ(i.size(), common);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeIntersectionProperty,
                         ::testing::Range(1, 9));

/// Property sweep: split_half + take/drop partition the range.
class RangeSplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(RangeSplitProperty, HalvesPartitionTheRange) {
  drms::support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 40; ++iter) {
    const Range r = Range::strided(rng.uniform_int(-10, 10),
                                   rng.uniform_int(10, 60),
                                   rng.uniform_int(1, 4));
    if (r.empty()) {
      continue;
    }
    const auto [lo, hi] = r.split_half();
    EXPECT_EQ(lo.size() + hi.size(), r.size());
    EXPECT_GE(lo.size(), hi.size());
    EXPECT_LE(lo.size() - hi.size(), 1);
    if (!hi.empty()) {
      EXPECT_LT(lo.last(), hi.first());
    }
    // Concatenation preserves the element sequence.
    std::vector<Index> cat = lo.to_vector();
    const auto hv = hi.to_vector();
    cat.insert(cat.end(), hv.begin(), hv.end());
    EXPECT_EQ(cat, r.to_vector());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSplitProperty, ::testing::Range(1, 7));

}  // namespace
