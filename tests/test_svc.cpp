// drms::svc IoScheduler — the multi-tenant checkpoint-service core.
// Covers the three design commitments (priority classes, per-job QoS
// tokens, sharded queues), the single-job inline degeneration contract
// the paper tables rely on, the deterministic virtual-time service
// model, error propagation through barriers, and the recorder wiring.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "svc/io_scheduler.hpp"

namespace {

using drms::svc::Completion;
using drms::svc::IoScheduler;
using drms::svc::JobToken;
using drms::svc::Priority;
using drms::svc::QosLimits;

/// Execution-order log shared with worker threads.
struct OrderLog {
  std::mutex mutex;
  std::vector<std::string> entries;

  void add(std::string entry) {
    const std::lock_guard<std::mutex> lock(mutex);
    entries.push_back(std::move(entry));
  }
  [[nodiscard]] std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return entries;
  }
};

TEST(Svc, SingleJobDegeneratesToInlineInOrderExecution) {
  drms::obs::Recorder recorder;
  IoScheduler::Options opts;
  opts.recorder = &recorder;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("solo");

  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    Completion c = scheduler.submit(job, Priority::kForeground, "file",
                                    /*bytes=*/64, /*sim_seconds=*/0.25,
                                    [&order, i] { order.push_back(i); });
    // Inline execution: the item is already done when submit returns,
    // with zero virtual queue-wait.
    EXPECT_TRUE(c.done());
    EXPECT_EQ(c.wait_seconds(), 0.0);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(scheduler.queue_depth(), 0u);
  EXPECT_EQ(scheduler.class_stats(Priority::kForeground).completed, 4u);
  EXPECT_EQ(recorder.counter("svc.inline"), 4u);
  EXPECT_EQ(recorder.counter("svc.submit.foreground"), 4u);
  EXPECT_EQ(recorder.counter("svc.complete.foreground"), 4u);
}

TEST(Svc, SingleJobInlineErrorsPropagateSynchronously) {
  IoScheduler scheduler;
  JobToken job = scheduler.register_job("solo");
  EXPECT_THROW(scheduler.submit(job, Priority::kForeground, "f", 0, 0.0,
                                [] { throw std::runtime_error("disk"); }),
               std::runtime_error);
  // The failure was consumed synchronously: the barrier has nothing to
  // rethrow and later submissions are unaffected.
  EXPECT_NO_THROW(scheduler.barrier(job));
  bool ran = false;
  scheduler.submit(job, Priority::kForeground, "f", 0, 0.0,
                   [&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(Svc, RestoreBeatsForegroundBeatsDrain) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");

  OrderLog log;
  // Submit in worst-case order onto one shard; dequeue must re-rank.
  scheduler.submit(job, Priority::kDrain, "k", 0, 0.0,
                   [&log] { log.add("drain"); });
  scheduler.submit(job, Priority::kForeground, "k", 0, 0.0,
                   [&log] { log.add("foreground"); });
  scheduler.submit(job, Priority::kRestore, "k", 0, 0.0,
                   [&log] { log.add("restore"); });
  EXPECT_EQ(scheduler.queue_depth(), 3u);
  scheduler.resume();
  scheduler.wait_idle();
  EXPECT_EQ(log.snapshot(),
            (std::vector<std::string>{"restore", "foreground", "drain"}));
}

TEST(Svc, FifoOnlyIsClassBlind) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  opts.fifo_only = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");

  OrderLog log;
  scheduler.submit(job, Priority::kDrain, "k", 0, 0.0,
                   [&log] { log.add("drain"); });
  scheduler.submit(job, Priority::kRestore, "k", 0, 0.0,
                   [&log] { log.add("restore"); });
  scheduler.resume();
  scheduler.wait_idle();
  // The serialized baseline keeps submission order even across classes.
  EXPECT_EQ(log.snapshot(), (std::vector<std::string>{"drain", "restore"}));
}

TEST(Svc, MaxInflightBlocksSubmitUntilCompletionsFreeASlot) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  QosLimits limits;
  limits.max_inflight = 2;
  JobToken job = scheduler.register_job("greedy", limits);

  scheduler.submit(job, Priority::kForeground, "a", 0, 0.0, [] {});
  scheduler.submit(job, Priority::kForeground, "b", 0, 0.0, [] {});

  std::atomic<bool> admitted{false};
  std::thread third([&] {
    scheduler.submit(job, Priority::kForeground, "c", 0, 0.0, [] {});
    admitted.store(true);
  });
  // At the budget the third submit must block while the queue is paused.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  // Draining the job's own completions frees a slot and admits it.
  scheduler.resume();
  third.join();
  EXPECT_TRUE(admitted.load());
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.class_stats(Priority::kForeground).completed, 3u);
}

TEST(Svc, VirtualTimelineShardsRunInParallel) {
  // 32 one-second items on one shard serialize to a 32 s makespan...
  IoScheduler::Options one;
  one.force_async = true;
  IoScheduler serial(one);
  JobToken sjob = serial.register_job("tenant");
  for (int i = 0; i < 32; ++i) {
    serial.submit(sjob, Priority::kForeground, "file" + std::to_string(i),
                  0, 1.0, [] {});
  }
  serial.wait_idle();
  EXPECT_DOUBLE_EQ(serial.makespan_seconds(), 32.0);

  // ...and spread over 4 shard queues the modeled makespan shrinks (the
  // hash spreads 32 distinct file names well below full serialization).
  IoScheduler::Options four;
  four.force_async = true;
  four.shard_count = 4;
  IoScheduler sharded(four);
  JobToken pjob = sharded.register_job("tenant");
  for (int i = 0; i < 32; ++i) {
    sharded.submit(pjob, Priority::kForeground, "file" + std::to_string(i),
                   0, 1.0, [] {});
  }
  sharded.wait_idle();
  EXPECT_GE(sharded.makespan_seconds(), 8.0);   // 32 s of work, 4 servers
  EXPECT_LT(sharded.makespan_seconds(), 32.0);  // genuinely parallel
}

TEST(Svc, QueueWaitIsDeterministicQueueingModel) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  opts.keep_wait_samples = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  // Three 2 s items queued at virtual time 0 on one shard: waits are
  // exactly 0, 2 and 4 s regardless of host timing.
  for (int i = 0; i < 3; ++i) {
    scheduler.submit(job, Priority::kForeground, "k", 0, 2.0, [] {});
  }
  scheduler.resume();
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.wait_samples(Priority::kForeground),
            (std::vector<double>{0.0, 2.0, 4.0}));
  const auto stats = scheduler.class_stats(Priority::kForeground);
  EXPECT_DOUBLE_EQ(stats.total_wait_seconds, 6.0);
  EXPECT_DOUBLE_EQ(stats.max_wait_seconds, 4.0);
  EXPECT_DOUBLE_EQ(scheduler.makespan_seconds(), 6.0);
}

TEST(Svc, RestoreGuardParksDrainsUntilReleased) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");

  std::atomic<int> drains{0};
  scheduler.submit(job, Priority::kDrain, "k", 0, 0.0,
                   [&drains] { ++drains; });
  Completion restore = scheduler.submit(job, Priority::kRestore, "k", 0, 0.0,
                                        [] {});
  auto guard = scheduler.preempt_drains();
  EXPECT_TRUE(guard.held());
  scheduler.resume();
  // The restore runs; the queued drain stays parked behind the guard.
  restore.wait();
  EXPECT_EQ(drains.load(), 0);
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  guard.release();
  EXPECT_FALSE(guard.held());
  scheduler.wait_idle();
  EXPECT_EQ(drains.load(), 1);
}

TEST(Svc, RestoreGuardSelfMoveKeepsTheDrainsParked) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  std::atomic<int> drains{0};
  scheduler.submit(job, Priority::kDrain, "k", 0, 0.0,
                   [&drains] { ++drains; });

  auto guard = scheduler.preempt_drains();
  auto* alias = &guard;
  guard = std::move(*alias);  // self-move must neither release nor leak
  EXPECT_TRUE(guard.held());
  scheduler.resume();
  scheduler.submit(job, Priority::kForeground, "k", 0, 0.0, [] {}).wait();
  EXPECT_EQ(drains.load(), 0);  // still parked
  guard.release();
  scheduler.wait_idle();
  EXPECT_EQ(drains.load(), 1);  // and not parked forever
}

TEST(Svc, RestoreGuardAssignOverArmedReleasesExactlyOneHold) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  std::atomic<int> drains{0};
  scheduler.submit(job, Priority::kDrain, "k", 0, 0.0,
                   [&drains] { ++drains; });

  auto a = scheduler.preempt_drains();
  auto b = scheduler.preempt_drains();
  a = std::move(b);  // drops a's hold, adopts b's: ONE hold remains
  EXPECT_TRUE(a.held());
  EXPECT_FALSE(b.held());
  scheduler.resume();
  scheduler.submit(job, Priority::kForeground, "k", 0, 0.0, [] {}).wait();
  EXPECT_EQ(drains.load(), 0);  // the surviving hold still parks drains
  a.release();
  scheduler.wait_idle();
  EXPECT_EQ(drains.load(), 1);  // hold count reached zero exactly once
}

TEST(Svc, RestoreGuardAssignEmptyOverArmedUnparks) {
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  std::atomic<int> drains{0};
  scheduler.submit(job, Priority::kDrain, "k", 0, 0.0,
                   [&drains] { ++drains; });

  auto guard = scheduler.preempt_drains();
  guard = IoScheduler::RestoreGuard();  // assigning empty releases the hold
  EXPECT_FALSE(guard.held());
  scheduler.resume();
  scheduler.wait_idle();
  EXPECT_EQ(drains.load(), 1);
  guard.release();  // double release stays idempotent
  EXPECT_FALSE(guard.held());
}

TEST(Svc, BarrierRethrowsTheJobsFirstAsyncErrorOnce) {
  IoScheduler::Options opts;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  scheduler.submit(job, Priority::kForeground, "k", 0, 0.0,
                   [] { throw std::runtime_error("torn write"); });
  scheduler.submit(job, Priority::kForeground, "k", 0, 0.0, [] {});
  EXPECT_THROW(scheduler.barrier(job), std::runtime_error);
  // The error was delivered exactly once.
  EXPECT_NO_THROW(scheduler.barrier(job));
  EXPECT_EQ(scheduler.class_stats(Priority::kForeground).failed, 1u);
}

TEST(Svc, CompletionWaitRethrowsThatItemsError) {
  IoScheduler::Options opts;
  opts.force_async = true;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  Completion bad = scheduler.submit(job, Priority::kForeground, "k", 0, 0.0,
                                    [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.wait(), std::runtime_error);
  // Consume the stored job error so the token's deregistration is clean.
  EXPECT_THROW(scheduler.barrier(job), std::runtime_error);
}

TEST(Svc, TwoJobsDisableTheInlineShortcut) {
  IoScheduler scheduler;
  JobToken a = scheduler.register_job("a");
  JobToken b = scheduler.register_job("b");
  EXPECT_EQ(scheduler.registered_jobs(), 2);
  std::atomic<bool> ran{false};
  scheduler.submit(a, Priority::kForeground, "k", 0, 0.0,
                   [&ran] { ran = true; });
  scheduler.barrier(a);
  EXPECT_TRUE(ran.load());
  // Releasing b restores the single-tenant system.
  b.release();
  EXPECT_EQ(scheduler.registered_jobs(), 1);
}

TEST(Svc, DestructorRunsEveryPendingItem) {
  std::atomic<int> ran{0};
  {
    // The token is declared first so the scheduler destructs before it:
    // teardown drains the paused backlog and orphans the job, and the
    // token's later release is a no-op instead of waiting on work the
    // dead scheduler can no longer run.
    JobToken job;
    IoScheduler::Options opts;
    opts.start_paused = true;
    opts.force_async = true;
    IoScheduler scheduler(opts);
    job = scheduler.register_job("tenant");
    for (int i = 0; i < 5; ++i) {
      scheduler.submit(job, Priority::kDrain, "k" + std::to_string(i), 0, 0.0,
                       [&ran] { ++ran; });
    }
    // No resume(): teardown itself must drain the backlog (durability
    // over priority at shutdown), then join the workers.
  }
  EXPECT_EQ(ran.load(), 5);
}

TEST(Svc, JobTokenOutlivingTheSchedulerIsSafe) {
  JobToken job;
  {
    IoScheduler scheduler;
    job = scheduler.register_job("orphan");
    EXPECT_TRUE(job.valid());
  }
  // The scheduler died first; the orphaned token must not touch it.
  job.release();
  EXPECT_FALSE(job.valid());
}

TEST(Svc, RecorderSeesAsyncCountersAndQueueDepth) {
  drms::obs::Recorder recorder;
  IoScheduler::Options opts;
  opts.start_paused = true;
  opts.force_async = true;
  opts.recorder = &recorder;
  IoScheduler scheduler(opts);
  JobToken job = scheduler.register_job("tenant");
  scheduler.submit(job, Priority::kRestore, "k", 128, 1.0, [] {});
  scheduler.submit(job, Priority::kDrain, "k", 256, 1.0, [] {});
  scheduler.resume();
  scheduler.wait_idle();
  EXPECT_EQ(recorder.counter("svc.jobs.registered"), 1u);
  EXPECT_EQ(recorder.counter("svc.submit.restore"), 1u);
  EXPECT_EQ(recorder.counter("svc.complete.restore"), 1u);
  EXPECT_EQ(recorder.counter("svc.submit.drain"), 1u);
  EXPECT_EQ(recorder.counter("svc.complete.drain"), 1u);
  EXPECT_EQ(recorder.gauge("svc.queue_depth.peak"), 2u);
  EXPECT_EQ(scheduler.peak_queue_depth(), 2u);
  EXPECT_EQ(scheduler.class_stats(Priority::kRestore).bytes, 128u);
  EXPECT_EQ(scheduler.class_stats(Priority::kDrain).bytes, 256u);
}

}  // namespace
