// Tests for the public DRMS API (DrmsProgram / DrmsContext): the Figure-1
// application skeleton, restart status/delta semantics, system-enabled
// checkpoints, multiple concurrent checkpoint prefixes, and the SPMD mode.
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "core/drms_context.hpp"
#include "support/error.hpp"
#include "rt/task_group.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::placement_of;
using drms::test::tag_of;

constexpr Index kN = 8;
constexpr int kIters = 25;
constexpr int kCheckpointEvery = 10;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 32 * 1024;
  m.private_bytes = 8 * 1024;
  m.system_bytes = 16 * 1024;
  m.text_bytes = 4 * 1024;
  return m;
}

/// The per-element update each "iteration" applies. Element-local, so a
/// field value after k iterations is a pure function of its tag — bitwise
/// reproducible on any task count.
double step(double v) { return v * 1.01 + 0.5; }

double expected_after(double tag, int iters) {
  double v = tag;
  for (int i = 0; i < iters; ++i) {
    v = step(v);
  }
  return v;
}

struct MiniAppResult {
  std::int64_t start_iteration = 0;
  int delta = 0;
  bool restarted = false;
  int checkpoints = 0;
  /// Elements whose final value differs (bitwise) from expected_after(tag,
  /// validate_iters); -1 when validation was skipped.
  int mismatches = -1;
};

/// A miniature solver in the Figure-1 shape: SOP (checkpoint site) at the
/// top of every kCheckpointEvery-th iteration, element-local updates in
/// between.
MiniAppResult run_mini_app(Volume& volume, int tasks,
                           const std::string& prefix,
                           const std::string& restart_from,
                           int stop_after_iter = kIters,
                           int validate_iters = -1,
                           CheckpointMode mode = CheckpointMode::kDrms) {
  DrmsEnv env;
  env.storage = &volume.backend();
  env.restart_prefix = restart_from;
  env.mode = mode;
  DrmsProgram program("mini", env, tiny_segment(), tasks);

  MiniAppResult out;
  std::atomic<int> total_mismatches{0};
  std::atomic<int> checkpoints{0};
  TaskGroup group(placement_of(tasks));
  const auto result = group.run([&](TaskContext& tctx) {
    DrmsContext drms(program, tctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();

    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    const DistSpec spec =
        DistSpec::block_auto(cube(kN), tasks, std::vector<Index>(3, 0));
    drms.distribute(u, spec);

    if (!drms.restarted()) {
      const Slice& assigned = spec.assigned(tctx.rank());
      assigned.for_each_column_major([&](std::span<const Index> p) {
        u.local(tctx.rank()).set_f64(p, tag_of(p));
      });
      tctx.barrier();
    }
    if (tctx.rank() == 0) {
      out.restarted = drms.restarted();
      out.start_iteration = it;
      out.delta = drms.delta();
    }

    while (it < stop_after_iter) {
      if (it > 0 && it % kCheckpointEvery == 0) {
        const ReconfigResult r = drms.reconfig_checkpoint(prefix);
        if (tctx.rank() == 0 && r.checkpoint_written) {
          checkpoints.fetch_add(1);
        }
      }
      const Slice& assigned = u.distribution().assigned(tctx.rank());
      assigned.for_each_column_major([&](std::span<const Index> p) {
        u.local(tctx.rank()).set_f64(p, step(u.local(tctx.rank())
                                                 .get_f64(p)));
      });
      tctx.barrier();
      ++it;
    }

    if (validate_iters >= 0) {
      int bad = 0;
      const Slice& assigned = u.distribution().assigned(tctx.rank());
      assigned.for_each_column_major([&](std::span<const Index> p) {
        if (u.local(tctx.rank()).get_f64(p) !=
            expected_after(tag_of(p), validate_iters)) {
          ++bad;
        }
      });
      total_mismatches.fetch_add(bad);
    }
  });
  EXPECT_TRUE(result.completed) << result.kill_reason;
  out.checkpoints = checkpoints.load();
  if (validate_iters >= 0) {
    out.mismatches = total_mismatches.load();
  }
  return out;
}

TEST(DrmsContext, FreshRunWritesCheckpointsAndComputesCorrectly) {
  Volume volume(16);
  const auto r = run_mini_app(volume, 4, "ck", "", kIters, kIters);
  EXPECT_FALSE(r.restarted);
  EXPECT_EQ(r.start_iteration, 0);
  EXPECT_EQ(r.checkpoints, 2);  // SOPs at it=10 and it=20
  EXPECT_EQ(r.mismatches, 0);
  EXPECT_TRUE(checkpoint_exists(volume, "ck"));
}

TEST(DrmsContext, RestartResumesAtCheckpointIteration) {
  Volume volume(16);
  (void)run_mini_app(volume, 4, "ck", "");  // last checkpoint at it=20
  const auto r = run_mini_app(volume, 4, "ck2", "ck");
  EXPECT_TRUE(r.restarted);
  EXPECT_EQ(r.start_iteration, 20);
  EXPECT_EQ(r.delta, 0);
}

/// The core reproduction invariant: an interrupted run restarted on ANY
/// task count produces bitwise the field of an uninterrupted run.
class DrmsContextReconfig
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DrmsContextReconfig, RestartMatchesUninterruptedRun) {
  const auto [t1, t2] = GetParam();

  // Interrupted: run just past the it=20 SOP on t1 tasks, then restart on
  // t2 tasks from that checkpoint and finish all kIters iterations.
  Volume volume(16);
  (void)run_mini_app(volume, t1, "ck", "", /*stop_after_iter=*/21);
  const auto resumed =
      run_mini_app(volume, t2, "ck2", "ck", kIters, kIters);
  EXPECT_TRUE(resumed.restarted);
  EXPECT_EQ(resumed.start_iteration, 20);
  EXPECT_EQ(resumed.delta, t2 - t1);
  EXPECT_EQ(resumed.mismatches, 0)
      << "restarted field must match the uninterrupted run bitwise";
}

INSTANTIATE_TEST_SUITE_P(
    TaskCounts, DrmsContextReconfig,
    ::testing::Values(std::make_pair(4, 4), std::make_pair(4, 2),
                      std::make_pair(2, 6), std::make_pair(8, 3),
                      std::make_pair(1, 5), std::make_pair(6, 1)));

TEST(DrmsContext, FirstCheckpointCallAfterRestartDoesNotWrite) {
  Volume volume(16);
  (void)run_mini_app(volume, 4, "ck", "", 21);
  // The resumed run's first SOP is the one it restarted from (it=20): it
  // must report Restarted and write nothing.
  const auto r = run_mini_app(volume, 5, "ck2", "ck", kIters);
  EXPECT_EQ(r.checkpoints, 0);
  EXPECT_FALSE(checkpoint_exists(volume, "ck2"));
}

TEST(DrmsContext, SpmdModeRoundTripSameTasks) {
  Volume volume(16);
  const auto fresh = run_mini_app(volume, 4, "sp", "", kIters, kIters,
                                  CheckpointMode::kSpmd);
  EXPECT_EQ(fresh.checkpoints, 2);
  EXPECT_EQ(fresh.mismatches, 0);
  EXPECT_TRUE(spmd_checkpoint_exists(volume, "sp"));

  Volume volume2(16);
  (void)run_mini_app(volume2, 4, "sp", "", 21, -1, CheckpointMode::kSpmd);
  const auto resumed = run_mini_app(volume2, 4, "sp2", "sp", kIters,
                                    kIters, CheckpointMode::kSpmd);
  EXPECT_TRUE(resumed.restarted);
  EXPECT_EQ(resumed.start_iteration, 20);
  EXPECT_EQ(resumed.mismatches, 0);
}

TEST(DrmsContext, SpmdModeRejectsReconfiguredRestart) {
  Volume volume(16);
  (void)run_mini_app(volume, 4, "sp", "", 21, -1, CheckpointMode::kSpmd);

  DrmsEnv env;
  env.storage = &volume.backend();
  env.restart_prefix = "sp";
  env.mode = CheckpointMode::kSpmd;
  DrmsProgram program("mini", env, tiny_segment(), 6);
  TaskGroup group(placement_of(6));
  const auto result = group.run([&](TaskContext& tctx) {
    DrmsContext drms(program, tctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    EXPECT_THROW(drms.initialize(), drms::support::Error);
  });
  EXPECT_TRUE(result.completed);
}

TEST(DrmsContext, ChkenableOnlyFiresWhenArmed) {
  Volume volume(16);
  DrmsEnv env;
  env.storage = &volume.backend();
  DrmsProgram program("mini", env, tiny_segment(), 3);
  TaskGroup group(placement_of(3));
  const auto result = group.run([&](TaskContext& tctx) {
    DrmsContext drms(program, tctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{3, 3, 3};
    DistArray& u = drms.create_array("u", lo, hi);
    drms.distribute(u, DistSpec::block_auto(cube(4), 3,
                                            std::vector<Index>(3, 0)));

    // Not armed: no checkpoint.
    auto r = drms.reconfig_chkenable("en");
    EXPECT_FALSE(r.checkpoint_written);
    EXPECT_FALSE(checkpoint_exists(volume, "en"));

    // Arm from "the system" (rank 0 plays the JSA here); the next enabling
    // point fires exactly once.
    tctx.barrier();
    if (tctx.rank() == 0) {
      program.enable_checkpoint();
    }
    tctx.barrier();
    r = drms.reconfig_chkenable("en");
    EXPECT_TRUE(r.checkpoint_written);
    r = drms.reconfig_chkenable("en");
    EXPECT_FALSE(r.checkpoint_written);  // signal consumed
  });
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(checkpoint_exists(volume, "en"));
  EXPECT_EQ(program.checkpoints_written(), 1);
}

TEST(DrmsContext, MultipleCheckpointPrefixesCoexist) {
  Volume volume(16);
  (void)run_mini_app(volume, 4, "ckA", "", 21);
  (void)run_mini_app(volume, 3, "ckB", "", 11);
  EXPECT_TRUE(checkpoint_exists(volume, "ckA"));
  EXPECT_TRUE(checkpoint_exists(volume, "ckB"));
  const auto a = run_mini_app(volume, 2, "x", "ckA");
  const auto b = run_mini_app(volume, 5, "y", "ckB");
  EXPECT_EQ(a.start_iteration, 20);
  EXPECT_EQ(b.start_iteration, 10);
}

TEST(DrmsContext, ArrayRedeclarationMismatchIsRejected) {
  Volume volume(16);
  DrmsEnv env;
  env.storage = &volume.backend();
  DrmsProgram program("mini", env, tiny_segment(), 2);
  TaskGroup group(placement_of(2));
  const auto result = group.run([&](TaskContext& tctx) {
    DrmsContext drms(program, tctx);
    drms.initialize();
    const std::array<Index, 2> lo{0, 0};
    const std::array<Index, 2> hi{7, 7};
    (void)drms.create_array("u", lo, hi);
    const std::array<Index, 2> hi2{7, 9};
    EXPECT_THROW((void)drms.create_array("u", lo, hi2),
                 drms::support::ContractViolation);
    EXPECT_THROW((void)drms.array("nonexistent"), drms::support::Error);
  });
  EXPECT_TRUE(result.completed);
}

TEST(DrmsContext, TimingAccountingWithCostModel) {
  Volume volume(16);
  const drms::sim::CostModel cost = drms::sim::CostModel::paper_sp16();
  // Timing flows through the storage backend, so this test needs one
  // carrying the cost model (TestVolume's default backend is untimed).
  drms::store::PiofsBackend timed(volume.piofs(), &cost);
  DrmsEnv env;
  env.storage = &timed;
  env.cost = &cost;
  DrmsProgram program("mini", env, tiny_segment(), 4);
  TaskGroup group(placement_of(4));
  const auto result = group.run([&](TaskContext& tctx) {
    DrmsContext drms(program, tctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    drms.distribute(u, DistSpec::block_auto(cube(kN), 4,
                                            std::vector<Index>(3, 0)));
    (void)drms.reconfig_checkpoint("ck");
  });
  EXPECT_TRUE(result.completed);
  const CheckpointTiming t = program.last_checkpoint_timing();
  EXPECT_GT(t.segment_seconds, 0.0);
  EXPECT_GT(t.arrays_seconds, 0.0);

  DrmsEnv env2 = env;
  env2.restart_prefix = "ck";
  DrmsProgram program2("mini", env2, tiny_segment(), 2);
  TaskGroup group2(placement_of(2));
  const auto result2 = group2.run([&](TaskContext& tctx) {
    DrmsContext drms(program2, tctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    drms.distribute(u, DistSpec::block_auto(cube(kN), 2,
                                            std::vector<Index>(3, 0)));
  });
  EXPECT_TRUE(result2.completed);
  const RestartTiming rt = program2.last_restart_timing();
  EXPECT_GT(rt.init_seconds, 0.0);
  EXPECT_GT(rt.segment_seconds, 0.0);
  EXPECT_GT(rt.arrays_seconds, 0.0);
}

}  // namespace
