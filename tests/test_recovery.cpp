// Tests for the recovery supervisor: reconfiguration policies, failure
// schedules, the detect -> select -> verify -> reconfigure -> resume loop,
// generation fallback past corrupt states, retention, SPMD task-count
// pinning, the launch budget, and a reduced seeded chaos sweep. Every
// recovered run must reproduce the failure-free field fingerprint —
// the solver's numerics are distribution-invariant, so ONE baseline CRC
// covers every task count, storage backend and restart path.
#include <gtest/gtest.h>

#include <string>

#include "apps/solver.hpp"
#include "arch/cluster.hpp"
#include "core/checkpoint_catalog.hpp"
#include "obs/recorder.hpp"
#include "recovery/failure_schedule.hpp"
#include "recovery/reconfig_policy.hpp"
#include "recovery/supervisor.hpp"
#include "rt/task_group.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/memory_backend.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms;
using namespace drms::recovery;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::placement_of;

constexpr core::Index kN = 8;
constexpr int kIterations = 12;
constexpr int kCheckpointEvery = 3;

/// SP with most of its inventory trimmed away: the recovery logic under
/// test does not depend on the full Table-4 data volume.
apps::AppSpec tiny_sp() {
  apps::AppSpec spec = apps::AppSpec::sp();
  spec.arrays.resize(2);
  spec.private_bytes = 4 * 1024;
  spec.system_bytes = 4 * 1024;
  spec.text_bytes = 4 * 1024;
  return spec;
}

apps::SolverOptions solver_options() {
  apps::SolverOptions o;
  o.spec = tiny_sp();
  o.n = kN;
  o.iterations = kIterations;
  o.checkpoint_every = kCheckpointEvery;
  o.prefix = "job";
  return o;
}

/// The failure-free fingerprint (computed once; distribution-invariant).
std::uint32_t baseline_crc() {
  static const std::uint32_t crc = [] {
    store::MemoryBackend storage;
    apps::SolverOptions o = solver_options();
    o.prefix.clear();
    core::DrmsEnv env;
    env.storage = &storage;
    auto program = apps::make_program(o, env, 4);
    std::uint32_t out = 0;
    TaskGroup group(placement_of(4));
    const auto run = group.run([&](TaskContext& ctx) {
      const auto outcome = apps::run_solver(*program, ctx, o);
      if (ctx.rank() == 0) {
        out = outcome.field_crc;
      }
    });
    EXPECT_TRUE(run.completed);
    return out;
  }();
  return crc;
}

sim::Machine machine_of(int nodes) {
  sim::Machine m;
  m.node_count = nodes;
  m.server_count = nodes;
  return m;
}

SupervisorOptions supervisor_options(store::StorageBackend& storage) {
  SupervisorOptions o;
  o.solver = solver_options();
  o.env.storage = &storage;
  o.preferred_tasks = 4;
  o.min_tasks = 1;
  return o;
}

FailureEvent kill_event(int launch, std::int64_t it) {
  FailureEvent e;
  e.kind = FailureKind::kKillPool;
  e.launch = launch;
  e.at_iteration = it;
  return e;
}

// ---- reconfiguration policies ----------------------------------------------

TEST(ReconfigPolicy, SameCountNeedsTheFullComplement) {
  SameCountPolicy p;
  ReconfigInput in;
  in.survivors = 4;
  in.checkpoint_tasks = 4;
  in.min_tasks = 1;
  in.preferred_tasks = 4;
  EXPECT_EQ(p.choose_tasks(in), 4);
  in.survivors = 3;  // one node short: refuse rather than shrink
  EXPECT_EQ(p.choose_tasks(in), 0);
  in.survivors = 8;
  in.checkpoint_tasks = 0;  // fresh start: fall back to preferred
  EXPECT_EQ(p.choose_tasks(in), 4);
}

TEST(ReconfigPolicy, ShrinkToSurvivorsTakesWhatIsLeft) {
  ShrinkToSurvivorsPolicy p;
  ReconfigInput in;
  in.survivors = 3;
  in.checkpoint_tasks = 4;
  in.min_tasks = 2;
  in.preferred_tasks = 4;
  EXPECT_EQ(p.choose_tasks(in), 3);
  in.survivors = 9;  // never above preferred
  EXPECT_EQ(p.choose_tasks(in), 4);
  in.survivors = 1;  // below the floor
  EXPECT_EQ(p.choose_tasks(in), 0);
}

TEST(ReconfigPolicy, PowerOfTwoRoundsDown) {
  PowerOfTwoPolicy p;
  ReconfigInput in;
  in.survivors = 7;
  in.checkpoint_tasks = 8;
  in.min_tasks = 1;
  in.preferred_tasks = 8;
  EXPECT_EQ(p.choose_tasks(in), 4);
  in.survivors = 8;
  EXPECT_EQ(p.choose_tasks(in), 8);
  in.min_tasks = 5;
  in.survivors = 7;  // largest power of two (4) under the floor
  EXPECT_EQ(p.choose_tasks(in), 0);
}

TEST(Recovery, GenerationPrefixIsZeroPadded) {
  EXPECT_EQ(RecoverySupervisor::generation_prefix("job", 3), "job.g000003");
  EXPECT_EQ(RecoverySupervisor::generation_prefix("job", 123456),
            "job.g123456");
  EXPECT_EQ(RecoverySupervisor::generation_prefix("a.b", 0), "a.b.g000000");
}

// ---- failure schedules ------------------------------------------------------

TEST(FailureScheduleTest, RandomIsDeterministicAndCyclesKinds) {
  ScheduleShape shape;
  shape.iterations = kIterations;
  shape.checkpoint_every = kCheckpointEvery;
  bool saw[5] = {};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FailureSchedule a = FailureSchedule::random(seed, shape);
    const FailureSchedule b = FailureSchedule::random(seed, shape);
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
    ASSERT_FALSE(a.events.empty());
    saw[seed % 5] = true;
    // Every event stays inside the run it targets.
    for (const auto& e : a.events) {
      EXPECT_GE(e.at_iteration, 0);
      EXPECT_LT(e.at_iteration, shape.iterations);
      EXPECT_TRUE(e.launch == 0 || e.launch == 1);
    }
    // Torn/corrupt primaries pair with a kill so the run actually restarts.
    if (a.has_kind(FailureKind::kTornNewest) ||
        a.has_kind(FailureKind::kCorruptNewest)) {
      EXPECT_TRUE(a.has_kind(FailureKind::kKillPool));
    }
  }
  for (bool s : saw) {
    EXPECT_TRUE(s);  // 5 consecutive seeds cover every failure class
  }
}

// ---- the supervisor loop ----------------------------------------------------

TEST(Recovery, CompletesWithoutFailures) {
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(6), nullptr);
  RecoverySupervisor supervisor(cluster);
  const RecoveryReport report = supervisor.run(supervisor_options(storage));
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 1u);
  EXPECT_FALSE(report.launches[0].from_checkpoint);
  EXPECT_EQ(report.launches[0].tasks, 4);
  EXPECT_TRUE(report.recoveries.empty());
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(Recovery, RecoversFromAKilledRun) {
  store::MemoryBackend storage;
  arch::EventLog log;
  arch::Cluster cluster(machine_of(6), &log);
  obs::Recorder recorder;
  RecoverySupervisor supervisor(cluster, &log);
  SupervisorOptions o = supervisor_options(storage);
  o.recorder = &recorder;
  FailureSchedule schedule;
  schedule.events.push_back(kill_event(0, 5));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_TRUE(report.launches[0].killed);
  EXPECT_TRUE(report.launches[1].from_checkpoint);
  EXPECT_GT(report.launches[1].restart_sop, 0);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());

  // One recovery, with its MTTR phase record.
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_GT(report.recoveries[0].total_ns(), 0u);
  EXPECT_GT(report.recoveries[0].resume_ns, 0u);

  // The loop's phases landed in the trace and the protocol in the log.
  EXPECT_GE(recorder.counter("recover.detected"), 1u);
  EXPECT_GE(recorder.counter("recover.completed"), 1u);
  EXPECT_TRUE(log.contains(arch::EventKind::kJobRestarted));
  EXPECT_TRUE(log.contains(arch::EventKind::kJobCompleted));
}

TEST(Recovery, NodeLossForcesReconfiguration) {
  // A machine with NO spare nodes: losing one forces t2 < t1.
  store::MemoryBackend storage;
  arch::EventLog log;
  arch::Cluster cluster(machine_of(4), &log);
  RecoverySupervisor supervisor(cluster, &log);
  SupervisorOptions o = supervisor_options(storage);
  FailureSchedule schedule;
  FailureEvent e;
  e.kind = FailureKind::kNodeLoss;
  e.launch = 0;
  e.at_iteration = 5;
  e.node_ordinal = 2;
  schedule.events.push_back(e);

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_EQ(report.launches[0].tasks, 4);
  EXPECT_EQ(report.launches[1].tasks, 3);
  EXPECT_EQ(report.reconfigurations, 1);
  EXPECT_TRUE(log.contains(arch::EventKind::kReconfigured));
  EXPECT_TRUE(log.contains(arch::EventKind::kTcLost));
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(Recovery, CorruptNewestGenerationFallsBack) {
  store::MemoryBackend storage;
  arch::EventLog log;
  arch::Cluster cluster(machine_of(6), &log);
  RecoverySupervisor supervisor(cluster, &log);
  SupervisorOptions o = supervisor_options(storage);
  FailureSchedule schedule;
  FailureEvent e;
  e.kind = FailureKind::kCorruptNewest;
  e.launch = 0;
  e.at_iteration = 6;  // right after the SOP at it=6 committed
  schedule.events.push_back(e);
  schedule.events.push_back(kill_event(0, 6));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  EXPECT_GE(report.generation_fallbacks, 1);
  EXPECT_TRUE(log.contains(arch::EventKind::kGenerationFallback));
  ASSERT_EQ(report.launches.size(), 2u);
  // The corrupt g000006 was skipped; the restart came from g000003.
  EXPECT_EQ(report.launches[1].restart_prefix, "job.g000003");
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(Recovery, TornNewestGenerationIsNotACandidate) {
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(6), nullptr);
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  FailureSchedule schedule;
  FailureEvent e;
  e.kind = FailureKind::kTornNewest;
  e.launch = 0;
  e.at_iteration = 6;
  schedule.events.push_back(e);
  schedule.events.push_back(kill_event(0, 6));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  // The decommitted g000006 never appears in the catalog: no fallback is
  // counted, the catalog's commit check already excluded it.
  EXPECT_EQ(report.launches[1].restart_prefix, "job.g000003");
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(Recovery, TransientFaultsAreAbsorbedWithoutARestart) {
  store::MemoryBackend inner;
  store::FaultInjectionBackend storage(inner);
  arch::Cluster cluster(machine_of(6), nullptr);
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  o.fault = &storage;
  FailureSchedule schedule;
  FailureEvent e;
  e.kind = FailureKind::kTransientFaults;
  e.launch = 0;
  e.at_iteration = kCheckpointEvery;
  e.transient_count = 2;
  schedule.events.push_back(e);

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.launches.size(), 1u);  // retry_io absorbed the faults
  EXPECT_GE(storage.faults_injected(), 2u);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(Recovery, RetentionBoundsTheGenerationCount) {
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(6), nullptr);
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  o.keep_last_k = 2;
  const RecoveryReport report = supervisor.run(o);
  ASSERT_TRUE(report.completed);
  // SOPs at it=3,6,9 wrote three generations; retention kept the last 2.
  const auto kept = core::restart_candidates(storage, o.solver.spec.name,
                                             o.solver.prefix + ".g");
  EXPECT_LE(kept.size(), 2u);
  EXPECT_FALSE(kept.empty());
}

TEST(Recovery, SpmdRestartPinsTheTaskCount) {
  // Spare nodes available, but SPMD state restores only onto t2 == t1.
  store::MemoryBackend storage;
  arch::Cluster cluster(machine_of(8), nullptr);
  RecoverySupervisor supervisor(cluster);
  SupervisorOptions o = supervisor_options(storage);
  o.env.mode = core::CheckpointMode::kSpmd;
  FailureSchedule schedule;
  schedule.events.push_back(kill_event(0, 5));

  const RecoveryReport report = supervisor.run(o, schedule);
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.launches.size(), 2u);
  EXPECT_TRUE(report.launches[1].from_checkpoint);
  EXPECT_EQ(report.launches[1].tasks, report.launches[0].tasks);
  EXPECT_EQ(report.reconfigurations, 0);
  EXPECT_EQ(report.outcome.field_crc, baseline_crc());
}

TEST(Recovery, GivesUpWhenTheLaunchBudgetIsExhausted) {
  store::MemoryBackend storage;
  arch::EventLog log;
  arch::Cluster cluster(machine_of(6), &log);
  RecoverySupervisor supervisor(cluster, &log);
  SupervisorOptions o = supervisor_options(storage);
  o.max_launches = 3;
  o.backoff_base = std::chrono::microseconds(1);
  FailureSchedule schedule;
  for (int launch = 0; launch < 3; ++launch) {
    schedule.events.push_back(kill_event(launch, 1));
  }

  const RecoveryReport report = supervisor.run(o, schedule);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.launches.size(), 3u);
  for (const auto& l : report.launches) {
    EXPECT_TRUE(l.killed);
  }
  EXPECT_TRUE(log.contains(arch::EventKind::kRecoveryGaveUp));
}

// ---- reduced seeded chaos sweep (the full campaign lives in
// bench_availability_model --chaos) -------------------------------------------

TEST(Recovery, SeededChaosSweepReproducesTheBaseline) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ScheduleShape shape;
    shape.iterations = kIterations;
    shape.checkpoint_every = kCheckpointEvery;
    const FailureSchedule schedule = FailureSchedule::random(seed, shape);

    store::MemoryBackend inner;
    store::FaultInjectionBackend storage(inner);
    arch::Cluster cluster(machine_of(seed % 2 == 0 ? 4 : 6), nullptr);
    RecoverySupervisor supervisor(cluster);
    SupervisorOptions o = supervisor_options(storage);
    o.fault = &storage;
    o.seed = seed + 1;
    o.backoff_base = std::chrono::microseconds(1);

    const RecoveryReport report = supervisor.run(o, schedule);
    ASSERT_TRUE(report.completed)
        << "seed " << seed << " schedule " << schedule.describe();
    EXPECT_EQ(report.outcome.field_crc, baseline_crc())
        << "seed " << seed << " schedule " << schedule.describe();
  }
}

}  // namespace
