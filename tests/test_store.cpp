// Tests for the pluggable storage layer (drms::store): PIOFS-adapter
// equivalence, the in-memory tier's capacity accounting, and the tiered
// backend's staging semantics — spill on capacity exhaustion, background
// drain, and restart after a simulated fast-tier loss.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint_format.hpp"
#include "core/drms_context.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "store/redundant_backend.hpp"
#include "store/storage_backend.hpp"
#include "store/tiered_backend.hpp"
#include "support/byte_buffer.hpp"
#include "support/error.hpp"
#include "support/units.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms;
using store::CapacityExceeded;
using store::FileHandle;
using store::MemoryBackend;
using store::PiofsBackend;
using store::StorageBackend;
using store::TieredBackend;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string string_of(const std::vector<std::byte>& b) {
  std::string out(b.size(), '\0');
  std::memcpy(out.data(), b.data(), b.size());
  return out;
}

/// Generic round trip every backend must support.
void round_trip(StorageBackend& storage) {
  auto f = storage.create("dir/a");
  f.write_at(0, bytes_of("hello"));
  f.append(bytes_of(" world"));
  f.write_zeros_at(11, 5);
  EXPECT_EQ(f.size(), 16u);
  EXPECT_EQ(string_of(storage.open("dir/a").read_at(0, 11)), "hello world");
  EXPECT_TRUE(storage.exists("dir/a"));
  EXPECT_FALSE(storage.exists("dir/b"));
  EXPECT_THROW((void)storage.open("dir/b"), support::IoError);
  EXPECT_EQ(storage.file_size("dir/a"), 16u);
  EXPECT_EQ(storage.total_size("dir/"), 16u);

  (void)storage.create("dir/b");
  EXPECT_EQ(storage.list("dir/").size(), 2u);
  EXPECT_EQ(storage.remove_prefix("dir/"), 2);
  EXPECT_TRUE(storage.list().empty());
}

TEST(PiofsBackend, RoundTrip) {
  piofs::Volume volume(16);
  PiofsBackend storage(volume);
  round_trip(storage);
  EXPECT_EQ(storage.server_count(), 16);
  EXPECT_FALSE(storage.charges_time());
}

TEST(MemoryBackend, RoundTrip) {
  MemoryBackend storage;
  round_trip(storage);
  EXPECT_EQ(storage.server_count(), 1);
}

TEST(TieredBackend, RoundTrip) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);
  round_trip(storage);
  EXPECT_EQ(storage.server_count(), 16);
}

TEST(PiofsBackend, AdapterIsBitIdenticalWithTheVolume) {
  piofs::Volume volume(16);
  PiofsBackend storage(volume);
  auto f = storage.create("x");
  f.write_at(3, bytes_of("abc"));
  // The same bytes are visible through the raw volume and vice versa.
  EXPECT_EQ(string_of(volume.open("x").read_at(3, 3)), "abc");
  volume.open("x").write_at(0, bytes_of("zzz"));
  EXPECT_EQ(string_of(storage.open("x").read_at(0, 6)), "zzzabc");
}

TEST(PiofsBackend, TimingMatchesTheCostModelExactly) {
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  piofs::Volume volume(16);
  const PiofsBackend storage(volume, &cost);
  ASSERT_TRUE(storage.charges_time());
  sim::LoadContext load;
  load.busy_server_fraction = 0.5;
  load.per_task_resident_bytes = 32 * support::kMiB;
  EXPECT_EQ(storage.single_write_seconds(1 << 20, load, nullptr),
            cost.single_write_seconds(1 << 20, load, nullptr));
  EXPECT_EQ(storage.concurrent_write_seconds(1 << 20, 8, load, nullptr),
            cost.concurrent_write_seconds(1 << 20, 8, load, nullptr));
  EXPECT_EQ(storage.shared_read_seconds(1 << 20, 8, load, nullptr),
            cost.shared_read_seconds(1 << 20, 8, load, nullptr));
  EXPECT_EQ(storage.private_read_seconds(1 << 20, 8, load, nullptr),
            cost.private_read_seconds(1 << 20, 8, load, nullptr));
  EXPECT_EQ(storage.stream_write_round_seconds(1 << 20, 8, load, nullptr),
            cost.stream_write_round_seconds(1 << 20, 8, load, nullptr));
  EXPECT_EQ(storage.stream_read_round_seconds(1 << 20, 8, load, nullptr),
            cost.stream_read_round_seconds(1 << 20, 8, load, nullptr));
}

TEST(MemoryBackend, CapacityExhaustionThrowsBeforeMutating) {
  MemoryBackend storage(/*capacity_bytes=*/64);
  auto f = storage.create("a");
  f.write_at(0, std::vector<std::byte>(48));
  EXPECT_EQ(storage.used_bytes(), 48u);
  // 48 + 32 > 64: refused, and the file is untouched.
  EXPECT_THROW(f.write_at(48, std::vector<std::byte>(32)),
               CapacityExceeded);
  EXPECT_EQ(f.size(), 48u);
  EXPECT_EQ(storage.used_bytes(), 48u);
  // Overwriting in place needs no new capacity.
  f.write_at(0, std::vector<std::byte>(48));
  // Freeing room makes the write admissible again.
  storage.remove("a");
  EXPECT_EQ(storage.used_bytes(), 0u);
  auto g = storage.create("b");
  g.write_at(0, std::vector<std::byte>(64));
  EXPECT_EQ(storage.used_bytes(), 64u);
}

TEST(MemoryBackend, ChargesMemoryBandwidthTime) {
  sim::CostModel cost = sim::CostModel::paper_sp16();
  const MemoryBackend storage(0, &cost);
  sim::LoadContext load;
  const double seconds =
      storage.single_write_seconds(150 * support::kMiB, load, nullptr);
  // 150 MiB at 150 MiB/s + fixed latency.
  EXPECT_NEAR(seconds, 1.0 + cost.memory_op_latency, 1e-9);
  // Far cheaper than the server-limited PIOFS path for the same phase.
  EXPECT_LT(seconds,
            cost.single_write_seconds(150 * support::kMiB, load, nullptr));
}

TEST(TieredBackend, CapacityOverflowSpillsToTheSlowTier) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast(/*capacity_bytes=*/64);
  TieredBackend storage(fast, slow);

  auto small = storage.create("small");
  small.write_at(0, std::vector<std::byte>(40, std::byte{1}));
  // The second file overflows the fast tier mid-write: its staged bytes
  // move to PIOFS and the write completes there.
  auto big = storage.create("big");
  big.write_at(0, std::vector<std::byte>(20, std::byte{2}));
  big.write_at(20, std::vector<std::byte>(40, std::byte{3}));
  EXPECT_EQ(big.size(), 60u);
  EXPECT_EQ(storage.stats().fast_spills, 1u);
  EXPECT_TRUE(volume.exists("big"));       // spilled to PIOFS
  EXPECT_FALSE(fast.exists("big"));        // no longer staged
  EXPECT_TRUE(fast.exists("small"));       // still staged
  EXPECT_FALSE(volume.exists("small"));    // not drained yet
  // Later writes to the spilled file go straight to the slow tier.
  big.append(std::vector<std::byte>(8, std::byte{4}));
  EXPECT_EQ(storage.open("big").size(), 68u);
  EXPECT_EQ(string_of(storage.open("big").read_at(20, 1)),
            std::string(1, '\x03'));
}

TEST(TieredBackend, DrainCopiesStagedFilesToTheSlowTier) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  storage.create("a").write_at(0, bytes_of("aaaa"));
  storage.create("b").write_at(0, bytes_of("bb"));
  EXPECT_EQ(storage.drain_backlog_bytes(), 6u);

  const auto report = storage.drain();
  EXPECT_EQ(report.files_drained, 2);
  EXPECT_EQ(report.bytes_drained, 6u);
  EXPECT_EQ(storage.drain_backlog_bytes(), 0u);
  EXPECT_EQ(string_of(volume.open("a").read_at(0, 4)), "aaaa");
  EXPECT_EQ(string_of(volume.open("b").read_at(0, 2)), "bb");
  // A second drain has nothing to do.
  EXPECT_EQ(storage.drain().files_drained, 0);
  // New writes re-dirty the file.
  storage.open("a").append(bytes_of("!"));
  EXPECT_EQ(storage.drain().files_drained, 1);
  EXPECT_EQ(string_of(volume.open("a").read_at(0, 5)), "aaaa!");
}

TEST(TieredBackend, FastTierLossFallsBackToDrainedCopies) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  storage.create("drained").write_at(0, bytes_of("safe"));
  (void)storage.drain();
  storage.create("undrained").write_at(0, bytes_of("gone"));

  storage.fail_fast_tier();
  EXPECT_FALSE(storage.fast_holds_data());
  // The drained file survives on PIOFS...
  EXPECT_TRUE(storage.exists("drained"));
  EXPECT_EQ(string_of(storage.open("drained").read_at(0, 4)), "safe");
  // ...the undrained one is lost, loudly.
  EXPECT_FALSE(storage.exists("undrained"));
  EXPECT_THROW((void)storage.open("undrained"), support::IoError);
}

TEST(TieredBackend, FailedRemoveIsSideEffectFree) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  storage.create("drained").write_at(0, bytes_of("safe"));
  (void)storage.drain();
  storage.create("lost").write_at(0, bytes_of("gone"));
  storage.fail_fast_tier();

  // The undrained file's bytes died with the fast tier: remove() fails...
  EXPECT_THROW(storage.remove("lost"), support::IoError);
  // ...and fails identically again — the first failure changed nothing.
  EXPECT_THROW(storage.remove("lost"), support::IoError);
  EXPECT_THROW(storage.remove("never-existed"), support::IoError);
  // Other files are untouched and still removable.
  EXPECT_TRUE(storage.exists("drained"));
  EXPECT_EQ(string_of(storage.open("drained").read_at(0, 4)), "safe");
  // The lost name can be re-created and behaves normally afterwards.
  storage.create("lost").write_at(0, bytes_of("new"));
  EXPECT_EQ(string_of(storage.open("lost").read_at(0, 3)), "new");
  storage.remove("lost");
  EXPECT_FALSE(storage.exists("lost"));
  storage.remove("drained");
  EXPECT_FALSE(storage.exists("drained"));
}

TEST(TieredBackend, RemovePrefixToleratesVanishedNames) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  storage.create("ck.a").write_at(0, bytes_of("a"));
  storage.create("ck.b").write_at(0, bytes_of("b"));
  (void)storage.drain();
  storage.fail_fast_tier();
  // "ck.b" vanishes beneath the tiered view (GC on the shared volume):
  // the sweep must remove what it can and skip the stale name.
  volume.remove("ck.b");
  EXPECT_EQ(storage.remove_prefix("ck."), 1);
  EXPECT_FALSE(storage.exists("ck.a"));
  // An empty sweep is a clean no-op.
  EXPECT_EQ(storage.remove_prefix("ck."), 0);
}

TEST(TieredBackend, PartialFitTimingChargesBothTiers) {
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  piofs::Volume volume(16);
  PiofsBackend slow(volume, &cost);
  MemoryBackend fast(/*capacity_bytes=*/64 * support::kKiB, &cost);
  TieredBackend storage(fast, slow);
  const sim::LoadContext load;
  const std::uint64_t k16 = 16 * support::kKiB;
  const std::uint64_t k32 = 32 * support::kKiB;

  // Everything fits: pure fast-tier price.
  EXPECT_EQ(storage.single_write_seconds(k16, load, nullptr),
            fast.single_write_seconds(k16, load, nullptr));

  // Occupy 48 KiB, leaving 16 KiB of fast headroom: a 32 KiB phase now
  // overflows mid-operation. The spill re-copies the WHOLE file to the
  // slow tier, so the price is the staged prefix at fast speed plus the
  // full size at slow speed.
  storage.create("staged").write_at(
      0, std::vector<std::byte>(48 * support::kKiB));
  EXPECT_EQ(storage.single_write_seconds(k32, load, nullptr),
            fast.single_write_seconds(k16, load, nullptr) +
                slow.single_write_seconds(k32, load, nullptr));
  EXPECT_EQ(storage.stream_write_round_seconds(k32, 4, load, nullptr),
            fast.stream_write_round_seconds(k16, 4, load, nullptr) +
                slow.stream_write_round_seconds(k32, 4, load, nullptr));

  // Fast tier full: pure slow-tier price.
  storage.create("staged2").write_at(0, std::vector<std::byte>(k16));
  EXPECT_EQ(storage.single_write_seconds(k32, load, nullptr),
            slow.single_write_seconds(k32, load, nullptr));
  EXPECT_EQ(storage.stream_write_round_seconds(k32, 4, load, nullptr),
            slow.stream_write_round_seconds(k32, 4, load, nullptr));
}

TEST(TieredBackend, AdoptsCheckpointsAlreadyOnTheSlowTier) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  volume.create("old").write_at(0, bytes_of("prior"));
  MemoryBackend fast;
  TieredBackend storage(fast, slow);
  EXPECT_TRUE(storage.exists("old"));
  EXPECT_EQ(string_of(storage.open("old").read_at(0, 5)), "prior");
}

// ---------------------------------------------------------------------------
// End to end: a DRMS checkpoint staged to memory survives a fast-tier
// loss once drained, and the restart reads the PIOFS copy.
// ---------------------------------------------------------------------------

core::AppSegmentModel tiny_segment() {
  core::AppSegmentModel m;
  m.static_local_bytes = 64 * 1024;
  m.system_bytes = 64 * 1024;
  return m;
}

constexpr core::Index kN = 8;

void run_mini(core::DrmsProgram& program, int tasks, bool expect_restart) {
  rt::TaskGroup group(drms::test::placement_of(tasks));
  const auto result = group.run([&](rt::TaskContext& task) {
    core::DrmsContext drms(program, task);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    const std::array<core::Index, 3> lo{0, 0, 0};
    const std::array<core::Index, 3> hi{kN - 1, kN - 1, kN - 1};
    core::DistArray& u = drms.create_array("u", lo, hi);
    drms.distribute(u, core::DistSpec::block_auto(
                           u.global_box(), tasks,
                           std::vector<core::Index>(3, 0)));
    if (!drms.restarted()) {
      EXPECT_FALSE(expect_restart);
      drms::test::fill_assigned_tagged(u, task.rank());
      task.barrier();
      it = 5;
      (void)drms.reconfig_checkpoint("tiered.ck");
    } else {
      EXPECT_TRUE(expect_restart);
      EXPECT_EQ(it, 5);
      EXPECT_EQ(drms::test::count_mapped_mismatches(u, task.rank()), 0);
    }
  });
  ASSERT_TRUE(result.completed);
}

TEST(TieredBackend, DrmsRestartAfterFastTierLossReadsTheDrainedCopy) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  core::DrmsEnv env;
  env.storage = &storage;
  {
    core::DrmsProgram program("mini", env, tiny_segment(), 4);
    run_mini(program, 4, /*expect_restart=*/false);
  }
  // The checkpoint committed against the memory tier only.
  EXPECT_GT(storage.drain_backlog_bytes(), 0u);
  EXPECT_FALSE(volume.exists(core::meta_file_name("tiered.ck")));

  // Background drain, then the node (and its memory tier) dies.
  const auto report = storage.drain();
  EXPECT_GT(report.bytes_drained, 0u);
  storage.fail_fast_tier();

  // Reconfigured restart (4 -> 3 tasks) from the drained PIOFS copies.
  core::DrmsEnv renv;
  renv.storage = &storage;
  renv.restart_prefix = "tiered.ck";
  core::DrmsProgram program("mini", renv, tiny_segment(), 3);
  run_mini(program, 3, /*expect_restart=*/true);
}

TEST(TieredBackend, DrmsCheckpointLostWithoutDrainFailsTheRestart) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  core::DrmsEnv env;
  env.storage = &storage;
  {
    core::DrmsProgram program("mini", env, tiny_segment(), 2);
    run_mini(program, 2, /*expect_restart=*/false);
  }
  storage.fail_fast_tier();  // crash BEFORE any drain
  EXPECT_FALSE(core::checkpoint_exists(storage, "tiered.ck"));
}

TEST(TieredBackend, DrmsCheckpointSpillsWhenTheFastTierIsTooSmall) {
  // Fast tier far smaller than the checkpoint: every stream overflows and
  // the state lands directly on PIOFS; the checkpoint still verifies.
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast(/*capacity_bytes=*/4 * 1024);
  TieredBackend storage(fast, slow);

  core::DrmsEnv env;
  env.storage = &storage;
  {
    core::DrmsProgram program("mini", env, tiny_segment(), 4);
    run_mini(program, 4, /*expect_restart=*/false);
  }
  EXPECT_GT(storage.stats().fast_spills, 0u);
  // The bulk of the state spilled straight to PIOFS; a drain flushes the
  // few small files (meta record) that did fit, then the tier dies.
  (void)storage.drain();
  storage.fail_fast_tier();
  core::DrmsEnv renv;
  renv.storage = &storage;
  renv.restart_prefix = "tiered.ck";
  core::DrmsProgram program("mini", renv, tiny_segment(), 4);
  run_mini(program, 4, /*expect_restart=*/true);
}

/// Zero-copy read contract every backend must honour: bytes land exactly
/// in the caller's span, sparse regions read back as zeros even into a
/// poisoned destination, and out-of-range reads fail without touching it.
void read_at_into_contract(StorageBackend& storage) {
  auto f = storage.create("ri/file");
  f.write_at(0, bytes_of("abcdefgh"));
  f.write_zeros_at(8, 8);  // sparse tail (piofs-backed stores skip blocks)
  f.write_at(16, bytes_of("tail"));
  ASSERT_EQ(f.size(), 20u);

  const auto handle = storage.open("ri/file");
  std::vector<std::byte> out(20, std::byte{0xEE});  // poisoned
  handle.read_at_into(0, out);
  EXPECT_EQ(string_of(out),
            std::string("abcdefgh") + std::string(8, '\0') + "tail");

  // Partial mid-file read into a sub-span leaves the rest untouched.
  std::vector<std::byte> part(6, std::byte{0xEE});
  handle.read_at_into(2, std::span(part).subspan(0, 4));
  EXPECT_EQ(string_of(part).substr(0, 4), "cdef");
  EXPECT_EQ(part[4], std::byte{0xEE});
  EXPECT_EQ(part[5], std::byte{0xEE});

  // Zero-length read anywhere in range is a no-op.
  handle.read_at_into(20, std::span<std::byte>());

  // Past-EOF reads throw and must not scribble on the destination.
  std::vector<std::byte> over(8, std::byte{0xEE});
  EXPECT_THROW(handle.read_at_into(16, over), support::IoError);

  // The span path and the allocating path see identical bytes.
  EXPECT_EQ(handle.read_at(0, 20), out);
}

TEST(PiofsBackend, ReadAtIntoContract) {
  piofs::Volume volume(4);
  PiofsBackend backend(volume);
  read_at_into_contract(backend);
}

TEST(MemoryBackend, ReadAtIntoContract) {
  MemoryBackend backend;
  read_at_into_contract(backend);
}

TEST(TieredBackend, ReadAtIntoContract) {
  MemoryBackend fast;
  piofs::Volume slow_volume(4);
  PiofsBackend slow(slow_volume);
  TieredBackend tiered(fast, slow);
  read_at_into_contract(tiered);
}

TEST(FaultInjectionBackend, ReadAtIntoContract) {
  MemoryBackend inner;
  store::FaultInjectionBackend faulty(inner);
  read_at_into_contract(faulty);
}

TEST(MemoryBackend, ReadAtIntoAccountsLikeReadAt) {
  MemoryBackend backend;
  auto f = backend.create("x");
  f.write_at(0, bytes_of("0123456789"));
  backend.reset_stats();
  std::vector<std::byte> out(10);
  backend.open("x").read_at_into(0, out);
  const auto stats = backend.stats();
  EXPECT_EQ(stats.bytes_read, 10u);
  EXPECT_EQ(stats.read_ops, 1u);
}

/// FileObject implementing only the allocating read — read_at_into must
/// work through the base-class bridge, so third-party backends stay
/// correct without overriding the fast path.
class BridgeOnlyFile final : public store::FileObject {
 public:
  void write_at(std::uint64_t offset,
                std::span<const std::byte> data) override {
    if (offset + data.size() > data_.size()) {
      data_.resize(static_cast<std::size_t>(offset) + data.size());
    }
    std::copy(data.begin(), data.end(),
              data_.begin() + static_cast<long>(offset));
  }
  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    write_at(offset, std::vector<std::byte>(
                         static_cast<std::size_t>(count), std::byte{0}));
  }
  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    ++allocating_reads_;
    return {data_.begin() + static_cast<long>(offset),
            data_.begin() + static_cast<long>(offset + count)};
  }
  void append(std::span<const std::byte> data) override {
    write_at(data_.size(), data);
  }
  [[nodiscard]] std::uint64_t size() const override { return data_.size(); }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] int allocating_reads() const { return allocating_reads_; }

 private:
  std::string name_ = "bridge-only";
  std::vector<std::byte> data_;
  mutable int allocating_reads_ = 0;
};

TEST(StorageBackend, ReadAtIntoDefaultBridgesThroughReadAt) {
  auto object = std::make_shared<BridgeOnlyFile>();
  FileHandle handle{object};
  handle.write_at(0, bytes_of("bridged"));
  std::vector<std::byte> out(7, std::byte{0xEE});
  handle.read_at_into(0, out);
  EXPECT_EQ(string_of(out), "bridged");
  EXPECT_EQ(object->allocating_reads(), 1)
      << "the default read_at_into must route through read_at";
}

TEST(TieredBackend, DrainWorkListAndPerFileDrainMatchTheSweep) {
  piofs::Volume volume(16);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  storage.create("a").write_at(0, bytes_of("aaaa"));
  storage.create("b").write_at(0, bytes_of("bb"));
  auto work = storage.drain_work();
  ASSERT_EQ(work.size(), 2u);
  std::uint64_t drained = 0;
  for (const auto& item : work) {
    const auto copied = storage.drain_file(item.name);
    ASSERT_TRUE(copied.has_value()) << item.name;
    EXPECT_EQ(*copied, item.bytes) << item.name;
    drained += *copied;
  }
  EXPECT_EQ(drained, 6u);
  EXPECT_EQ(storage.drain_backlog_bytes(), 0u);
  EXPECT_EQ(string_of(volume.open("a").read_at(0, 4)), "aaaa");
  // Clean files are benignly skipped, not errors.
  EXPECT_FALSE(storage.drain_file("a").has_value());
  EXPECT_FALSE(storage.drain_file("never-existed").has_value());
  // The modeled background write time matches the slow tier's price.
  EXPECT_DOUBLE_EQ(storage.drain_write_seconds(4096),
                   slow.single_write_seconds(4096, {}, nullptr));
}

TEST(TieredBackend, ConcurrentDrainVersusRestoreIsNeverTorn) {
  piofs::Volume volume(64);
  PiofsBackend slow(volume);
  MemoryBackend fast;
  TieredBackend storage(fast, slow);

  // Each file holds one repeated version byte; a full-file write under
  // the entry lock bumps the version. A torn observation would mix
  // version bytes inside one read.
  constexpr int kFiles = 6;
  constexpr std::size_t kSize = 512;
  const auto payload = [](int file, int version) {
    return std::string(kSize, static_cast<char>('A' + file + 3 * version));
  };
  const auto name = [](int file) { return "f" + std::to_string(file); };
  for (int i = 0; i < kFiles; ++i) {
    storage.create(name(i)).write_at(0, bytes_of(payload(i, 0)));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  // Restore path: keep reading every file; contents must always be one
  // uniform version (fully fast or fully slow, never a mix).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kFiles; ++i) {
        const std::string got =
            string_of(storage.open(name(i)).read_at(0, kSize));
        for (char c : got) {
          if (c != got[0]) {
            ++torn;
            break;
          }
        }
      }
    }
  });
  // Drain path: sweep the event-model work list, one file per item, as
  // the scheduler's drain service does.
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& item : storage.drain_work()) {
        (void)storage.drain_file(item.name);
      }
    }
  });
  // Writer: keep re-dirtying the files with new versions.
  for (int version = 1; version <= 40; ++version) {
    for (int i = 0; i < kFiles; ++i) {
      storage.open(name(i)).write_at(0, bytes_of(payload(i, version)));
    }
  }
  stop.store(true);
  reader.join();
  drainer.join();
  EXPECT_EQ(torn.load(), 0);

  // Quiesce: a final sweep drains the last versions; after a fast-tier
  // loss every file must read back its newest content from the slow tier.
  for (const auto& item : storage.drain_work()) {
    (void)storage.drain_file(item.name);
  }
  storage.fail_fast_tier();
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_EQ(string_of(storage.open(name(i)).read_at(0, kSize)),
              payload(i, 40));
  }
}

TEST(TieredBackend, DrainFileSkipsAFileRemovedAfterTheSnapshot) {
  MemoryBackend fast;
  MemoryBackend slow;
  TieredBackend storage(fast, slow);
  storage.create("a").write_at(0, bytes_of("payload"));
  ASSERT_EQ(storage.drain_work().size(), 1u);

  // The file vanishes between the drain_work snapshot and the queued
  // item's execution: the drain must skip cleanly — no resurrection on
  // the slow tier, no dirty-set leak.
  storage.remove("a");
  EXPECT_FALSE(storage.drain_file("a").has_value());
  EXPECT_FALSE(slow.exists("a"));
  EXPECT_TRUE(storage.drain_work().empty());
  EXPECT_EQ(storage.drain_backlog_bytes(), 0u);
  EXPECT_EQ(storage.drain().files_drained, 0);
}

TEST(TieredBackend, DrainFileSkipsAFileWhoseFastCopyVanished) {
  MemoryBackend fast;
  MemoryBackend slow;
  TieredBackend storage(fast, slow);
  storage.create("a").write_at(0, bytes_of("payload"));
  ASSERT_EQ(storage.drain_work().size(), 1u);

  // The physical fast-tier copy disappears while the entry still says
  // in_fast (a node of a redundant fast tier died under the entry): the
  // per-file drain must clear the stale flags instead of throwing.
  fast.remove("a");
  EXPECT_FALSE(storage.drain_file("a").has_value());
  EXPECT_FALSE(slow.exists("a"));
  EXPECT_TRUE(storage.drain_work().empty());
  EXPECT_EQ(storage.drain().files_drained, 0);
}

TEST(TieredBackend, ReconcileFastTierDowngradesFilesLostWithTheirNodes) {
  store::RedundantBackend fast(
      2, store::RedundancyScheme{store::RedundancyKind::kPartner, 2});
  MemoryBackend slow;
  TieredBackend storage(fast, slow);
  storage.create("a").write_at(0, bytes_of("drained"));
  storage.create("b").write_at(0, bytes_of("lost"));
  ASSERT_TRUE(storage.drain_file("a").has_value());  // safety copy on slow

  // Both partner nodes die: every fast-tier copy is gone while the
  // tiered entries still claim in_fast.
  fast.fail_node(0);
  fast.fail_node(1);
  EXPECT_EQ(storage.reconcile_fast_tier(), 2);

  // The drained file falls back to its slow-tier copy; the undrained
  // one is honestly lost; and no stale dirty work remains.
  EXPECT_TRUE(storage.exists("a"));
  EXPECT_EQ(string_of(storage.open("a").read_at(0, 7)), "drained");
  EXPECT_FALSE(storage.exists("b"));
  EXPECT_TRUE(storage.drain_work().empty());
  EXPECT_EQ(storage.drain().files_drained, 0);
}

TEST(StorageBackend, ReadToBufferYieldsReadableBuffer) {
  MemoryBackend backend;
  auto f = backend.create("buf");
  support::ByteBuffer payload;
  payload.put_u64(77);
  payload.put_string("zero copy");
  f.write_at(0, payload.bytes());
  support::ByteBuffer read =
      store::read_to_buffer(backend.open("buf"), 0, f.size());
  EXPECT_EQ(read.get_u64(), 77u);
  EXPECT_EQ(read.get_string(), "zero copy");
  EXPECT_EQ(read.remaining(), 0u);
}

}  // namespace
