// Unit tests for the simulation layer: machine placement, the PIOFS cost
// model's mechanisms (server-limited writes, client-limited shared reads,
// the private-read buffer threshold, co-location interference), and the
// BSP simulated clock.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace {

using namespace drms::sim;
using drms::support::kMiB;

LoadContext load_for(int tasks, std::uint64_t resident) {
  const Placement p = Placement::one_per_node(Machine::paper_sp16(), tasks);
  LoadContext load;
  load.busy_server_fraction = p.busy_server_fraction();
  load.per_task_resident_bytes = resident;
  load.max_tasks_per_node = p.max_tasks_per_node();
  load.node_memory_bytes = p.machine().node_memory_bytes;
  load.server_count = p.machine().server_count;
  return load;
}

TEST(Placement, OnePerNodeBasics) {
  const Machine m = Machine::paper_sp16();
  const Placement p = Placement::one_per_node(m, 8);
  EXPECT_EQ(p.task_count(), 8);
  EXPECT_EQ(p.node_of(0), 0);
  EXPECT_EQ(p.node_of(7), 7);
  EXPECT_EQ(p.tasks_on_node(0), 1);
  EXPECT_EQ(p.tasks_on_node(15), 0);
  EXPECT_DOUBLE_EQ(p.busy_server_fraction(), 0.5);
  EXPECT_EQ(p.max_tasks_per_node(), 1);
}

TEST(Placement, FullMachineIsFullyBusy) {
  const Placement p = Placement::one_per_node(Machine::paper_sp16(), 16);
  EXPECT_DOUBLE_EQ(p.busy_server_fraction(), 1.0);
}

TEST(Placement, OversubscribedNode) {
  Machine m = Machine::paper_sp16();
  const Placement p(m, {0, 0, 1});
  EXPECT_EQ(p.tasks_on_node(0), 2);
  EXPECT_EQ(p.max_tasks_per_node(), 2);
}

TEST(Placement, RejectsBadNode) {
  Machine m = Machine::paper_sp16();
  EXPECT_THROW(Placement(m, {17}), drms::support::ContractViolation);
}

TEST(CostModel, ZeroModelChargesNothing) {
  const CostModel m = CostModel::zero();
  const LoadContext ctx = load_for(8, 63 * kMiB);
  EXPECT_EQ(m.single_write_seconds(kMiB, ctx, nullptr), 0.0);
  EXPECT_EQ(m.shared_read_seconds(kMiB, 8, ctx, nullptr), 0.0);
  EXPECT_EQ(m.private_read_seconds(kMiB, 8, ctx, nullptr), 0.0);
  EXPECT_EQ(m.stream_write_round_seconds(kMiB, 8, ctx, nullptr), 0.0);
  EXPECT_EQ(m.stream_read_round_seconds(kMiB, 8, ctx, nullptr), 0.0);
  EXPECT_EQ(m.restart_init_seconds(kMiB, nullptr), 0.0);
}

TEST(CostModel, ServerWriteCapacityInterpolatesMonotonically) {
  const CostModel m = CostModel::paper_sp16();
  double prev = m.server_write_bw(0);
  for (std::uint64_t p = 0; p <= 200 * kMiB; p += 5 * kMiB) {
    const double bw = m.server_write_bw(p);
    EXPECT_LE(bw, prev + 1e-9) << "capacity must not increase with pressure";
    prev = bw;
  }
}

TEST(CostModel, SingleWriteSlowerWhenCoLocated) {
  const CostModel m = CostModel::paper_sp16();
  const std::uint64_t seg = 63 * kMiB;
  const double t8 = m.single_write_seconds(seg, load_for(8, seg), nullptr);
  const double t16 = m.single_write_seconds(seg, load_for(16, seg), nullptr);
  EXPECT_GT(t16, t8) << "16-processor runs interfere with the file servers";
}

TEST(CostModel, SharedReadTimeIndependentOfReaderCount) {
  const CostModel m = CostModel::paper_sp16();
  const std::uint64_t seg = 63 * kMiB;
  const double t8 = m.shared_read_seconds(seg, 8, load_for(8, seg), nullptr);
  const double t16 =
      m.shared_read_seconds(seg, 16, load_for(16, seg), nullptr);
  // Client-limited: per-client time is flat, so aggregate rate scales with
  // the reader count (the paper's Table 6 read-rate trend).
  EXPECT_NEAR(t8, t16, 1e-9);
}

TEST(CostModel, PrivateReadCollapsesPastThreshold) {
  const CostModel m = CostModel::paper_sp16();
  // Below the knee (SP-like 53 MB segment on 8 of 16 nodes).
  const double small = m.private_read_seconds(
      53 * kMiB, 8, load_for(8, 53 * kMiB), nullptr);
  const double small_rate = static_cast<double>(53 * kMiB) / small;
  // Far past it (LU-like 85 MB segment on 16 co-located nodes).
  const double big = m.private_read_seconds(
      85 * kMiB, 16, load_for(16, 85 * kMiB), nullptr);
  const double big_rate = static_cast<double>(85 * kMiB) / big;
  EXPECT_GT(small_rate / big_rate, 3.0)
      << "buffer-memory threshold must cause a multi-x rate collapse";
}

TEST(CostModel, PrivateReadPressureAddsServerShareWhenCoLocated) {
  const CostModel m = CostModel::paper_sp16();
  const std::uint64_t seg = 63 * kMiB;
  const auto p8 = m.private_read_pressure(seg, 8, load_for(8, seg));
  const auto p16 = m.private_read_pressure(seg, 16, load_for(16, seg));
  EXPECT_GT(p16, p8);
  EXPECT_GE(p8, seg);  // at least the resident segment itself
}

TEST(CostModel, StreamWriteRoundIsServerLimited) {
  const CostModel m = CostModel::paper_sp16();
  const LoadContext ctx = load_for(16, 63 * kMiB);
  const double t8 = m.stream_write_round_seconds(8 * kMiB, 8, ctx, nullptr);
  const double t16 =
      m.stream_write_round_seconds(8 * kMiB, 16, ctx, nullptr);
  // Doubling the writers shrinks only the redistribution half, not the
  // server-limited write half.
  EXPECT_LT(t16, t8);
  EXPECT_GT(t16, t8 / 2.0);
}

TEST(CostModel, StreamReadRoundIsClientLimited) {
  const CostModel m = CostModel::paper_sp16();
  const LoadContext ctx = load_for(16, 63 * kMiB);
  const double t8 = m.stream_read_round_seconds(8 * kMiB, 8, ctx, nullptr);
  const double t16 = m.stream_read_round_seconds(8 * kMiB, 16, ctx, nullptr);
  // Client-limited: near-linear speedup in the reader count.
  EXPECT_NEAR(t16, (t8 - m.op_latency) / 2.0 + m.op_latency, 0.05 * t8);
}

TEST(CostModel, ConcurrentWriteAggregatesAcrossWriters) {
  const CostModel m = CostModel::paper_sp16();
  const std::uint64_t seg = 63 * kMiB;
  const double t8 =
      m.concurrent_write_seconds(seg, 8, load_for(8, seg), nullptr);
  const double t16 =
      m.concurrent_write_seconds(seg, 16, load_for(16, seg), nullptr);
  // Twice the state through degraded servers: much more than 2x slower is
  // expected only past the pressure knee; at least it must grow.
  EXPECT_GT(t16, t8);
}

TEST(CostModel, JitterPerturbsButStaysClose) {
  const CostModel m = CostModel::paper_sp16();
  const LoadContext ctx = load_for(8, 63 * kMiB);
  drms::support::Rng rng(42);
  const double base = m.single_write_seconds(63 * kMiB, ctx, nullptr);
  for (int i = 0; i < 50; ++i) {
    const double jittered = m.single_write_seconds(63 * kMiB, ctx, &rng);
    EXPECT_GT(jittered, base * 0.6);
    EXPECT_LT(jittered, base * 1.6);
  }
}

TEST(CostModel, ComputeSecondsScalesWithPoints) {
  const CostModel m = CostModel::paper_sp16();
  EXPECT_GT(m.compute_seconds(1'000'000), 0.0);
  EXPECT_DOUBLE_EQ(m.compute_seconds(2'000'000),
                   2.0 * m.compute_seconds(1'000'000));
  EXPECT_EQ(CostModel::zero().compute_seconds(1'000'000), 0.0);
}

TEST(SimClock, AdvanceAndSync) {
  SimClock clock(3);
  clock.advance(0, 1.0);
  clock.advance(1, 5.0);
  EXPECT_DOUBLE_EQ(clock.time_of(0), 1.0);
  EXPECT_DOUBLE_EQ(clock.time_of(2), 0.0);
  EXPECT_DOUBLE_EQ(clock.max_time(), 5.0);
  clock.sync_to_max();
  EXPECT_DOUBLE_EQ(clock.time_of(0), 5.0);
  EXPECT_DOUBLE_EQ(clock.time_of(2), 5.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.max_time(), 0.0);
}

TEST(SimClock, RejectsNegativeAdvance) {
  SimClock clock(1);
  EXPECT_THROW(clock.advance(0, -1.0), drms::support::ContractViolation);
}

}  // namespace
