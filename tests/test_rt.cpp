// Tests for the SPMD task runtime: point-to-point matching, barriers with
// clock synchronization, collectives, failure injection, and determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rt/collectives.hpp"
#include "rt/task_context.hpp"
#include "rt/task_group.hpp"
#include "support/error.hpp"

namespace {

using namespace drms::rt;
using drms::sim::Machine;
using drms::sim::Placement;
using drms::support::ByteBuffer;


drms::sim::Placement placement_of(int tasks) {
  return Placement::one_per_node(Machine::paper_sp16(), tasks);
}

TEST(TaskGroup, RunsEveryRankExactlyOnce) {
  TaskGroup group(placement_of(8));
  std::atomic<int> mask{0};
  const auto result = group.run([&](TaskContext& ctx) {
    mask.fetch_or(1 << ctx.rank());
    EXPECT_EQ(ctx.size(), 8);
  });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(mask.load(), 0xff);
}

TEST(TaskGroup, PointToPointRoundTrip) {
  TaskGroup group(placement_of(2));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      ByteBuffer msg;
      msg.put_u64(123);
      ctx.send(1, 7, std::move(msg));
      Message reply = ctx.recv(1, 8);
      EXPECT_EQ(reply.payload.get_u64(), 124u);
    } else {
      Message msg = ctx.recv(0, 7);
      ByteBuffer reply;
      reply.put_u64(msg.payload.get_u64() + 1);
      ctx.send(0, 8, std::move(reply));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskGroup, TagAndSourceMatching) {
  TaskGroup group(placement_of(2));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      ByteBuffer a;
      a.put_u64(1);
      ByteBuffer b;
      b.put_u64(2);
      ctx.send(1, 10, std::move(a));
      ctx.send(1, 20, std::move(b));
    } else {
      // Receive out of order: tag 20 first, then tag 10.
      Message m20 = ctx.recv(0, 20);
      Message m10 = ctx.recv(0, 10);
      EXPECT_EQ(m20.payload.get_u64(), 2u);
      EXPECT_EQ(m10.payload.get_u64(), 1u);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskGroup, WildcardReceive) {
  TaskGroup group(placement_of(4));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        Message m = ctx.recv(kAnySource, kAnyTag);
        sum += static_cast<int>(m.payload.get_u64());
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      ByteBuffer msg;
      msg.put_u64(static_cast<std::uint64_t>(ctx.rank()));
      ctx.send(0, ctx.rank(), std::move(msg));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskGroup, UserTagsMustBeNonNegative) {
  TaskGroup group(placement_of(2));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_THROW(ctx.send(1, -5, ByteBuffer{}),
                   drms::support::ContractViolation);
      ctx.send(1, 0, ByteBuffer{});
    } else {
      (void)ctx.recv(0, 0);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskGroup, BarrierSynchronizesSimClock) {
  TaskGroup group(placement_of(4));
  const auto result = group.run([](TaskContext& ctx) {
    ctx.charge(ctx.rank() * 1.0);  // ranks are 0..3 seconds apart
    ctx.barrier();
    EXPECT_DOUBLE_EQ(ctx.sim_time(), 3.0);  // everyone at the max
  });
  EXPECT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.sim_seconds, 3.0);
}

TEST(TaskGroup, ErrorInOneTaskKillsTheGroup) {
  TaskGroup group(placement_of(4));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 2) {
      throw drms::support::Error("synthetic failure");
    }
    // Everyone else blocks forever; the kill must wake them.
    for (;;) {
      (void)ctx.recv(kAnySource, 12345);
    }
  });
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.killed);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("task 2"), std::string::npos);
  EXPECT_NE(result.kill_reason.find("synthetic failure"), std::string::npos);
}

TEST(TaskGroup, ExternalKillInterruptsBarrier) {
  TaskGroup group(placement_of(4));
  std::thread killer([&group] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    group.kill("processor failure injected");
  });
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      // Rank 0 never reaches the barrier; the others must still unblock.
      for (;;) {
        ctx.check_killed();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    ctx.barrier();
  });
  killer.join();
  EXPECT_TRUE(result.killed);
  EXPECT_EQ(result.kill_reason, "processor failure injected");
  EXPECT_TRUE(result.errors.empty());  // clean kill, not task errors
}

TEST(Collectives, Broadcast) {
  TaskGroup group(placement_of(5));
  const auto result = group.run([](TaskContext& ctx) {
    ByteBuffer buf;
    if (ctx.rank() == 2) {
      buf.put_string("payload");
    }
    broadcast(ctx, buf, 2);
    buf.rewind();
    EXPECT_EQ(buf.get_string(), "payload");
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, GatherCollectsByRank) {
  TaskGroup group(placement_of(4));
  const auto result = group.run([](TaskContext& ctx) {
    ByteBuffer mine;
    mine.put_u64(static_cast<std::uint64_t>(ctx.rank() * 10));
    auto all = gather(ctx, std::move(mine), 1);
    if (ctx.rank() == 1) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].get_u64(),
                  static_cast<std::uint64_t>(r * 10));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, AllGather) {
  TaskGroup group(placement_of(3));
  const auto result = group.run([](TaskContext& ctx) {
    ByteBuffer mine;
    mine.put_u64(static_cast<std::uint64_t>(ctx.rank() + 100));
    auto all = all_gather(ctx, std::move(mine));
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].get_u64(),
                static_cast<std::uint64_t>(r + 100));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, AllToAllPersonalized) {
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  const auto result = group.run([](TaskContext& ctx) {
    std::vector<ByteBuffer> out(kP);
    for (int d = 0; d < kP; ++d) {
      out[static_cast<std::size_t>(d)].put_u64(
          static_cast<std::uint64_t>(ctx.rank() * 100 + d));
    }
    auto in = all_to_all(ctx, std::move(out));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(kP));
    for (int s = 0; s < kP; ++s) {
      EXPECT_EQ(in[static_cast<std::size_t>(s)].get_u64(),
                static_cast<std::uint64_t>(s * 100 + ctx.rank()));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, Reductions) {
  TaskGroup group(placement_of(6));
  const auto result = group.run([](TaskContext& ctx) {
    const double r = ctx.rank();
    EXPECT_DOUBLE_EQ(all_reduce_sum(ctx, r), 15.0);
    EXPECT_DOUBLE_EQ(all_reduce_max(ctx, r), 5.0);
    EXPECT_DOUBLE_EQ(all_reduce_min(ctx, r), 0.0);
    EXPECT_EQ(all_reduce_sum_u64(ctx, 2), 12u);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, FloatingPointSumIsBitReproducible) {
  // Sums are folded in rank order, so two runs give identical bits even
  // though delivery order varies with thread scheduling.
  constexpr int kP = 8;
  double first = 0;
  for (int run = 0; run < 5; ++run) {
    TaskGroup group(placement_of(kP), /*seed=*/7);
    double out = 0;
    const auto result = group.run([&](TaskContext& ctx) {
      const double v = 0.1 * (ctx.rank() + 1) + 1e-13 * ctx.rank();
      const double s = all_reduce_sum(ctx, v);
      if (ctx.rank() == 0) {
        out = s;
      }
    });
    EXPECT_TRUE(result.completed);
    if (run == 0) {
      first = out;
    } else {
      EXPECT_EQ(out, first);
    }
  }
}

TEST(Collectives, InterleavedCollectivesDoNotCrossTalk) {
  TaskGroup group(placement_of(4));
  const auto result = group.run([](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i) {
      const double s = all_reduce_sum(ctx, 1.0);
      EXPECT_DOUBLE_EQ(s, 4.0);
      ByteBuffer b;
      if (ctx.rank() == 0) {
        b.put_u64(static_cast<std::uint64_t>(i));
      }
      broadcast(ctx, b, 0);
      b.rewind();
      EXPECT_EQ(b.get_u64(), static_cast<std::uint64_t>(i));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskContext, NonBlockingReceive) {
  TaskGroup group(placement_of(2));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 1) {
      auto pending = ctx.irecv(0, 5);
      // Nothing sent yet: polling must not block or complete.
      EXPECT_FALSE(pending.try_complete());
      EXPECT_FALSE(pending.completed());
      ctx.barrier();  // release the sender
      Message& msg = pending.wait();
      EXPECT_EQ(msg.payload.get_u64(), 77u);
      EXPECT_TRUE(pending.completed());
      // wait() is idempotent once completed.
      (void)pending.wait();
    } else {
      ctx.barrier();
      ByteBuffer out;
      out.put_u64(77);
      ctx.send(1, 5, std::move(out));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskContext, NonBlockingReceivePollLoop) {
  TaskGroup group(placement_of(2));
  const auto result = group.run([](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      auto pending = ctx.irecv(1, 9);
      int polls = 0;
      while (!pending.try_complete()) {
        ++polls;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      EXPECT_EQ(pending.message().payload.get_u64(), 123u);
      (void)polls;  // count varies with scheduling; completing is enough
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ByteBuffer out;
      out.put_u64(123);
      ctx.send(0, 9, std::move(out));
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskContext, SendrecvRingRotation) {
  constexpr int kP = 5;
  TaskGroup group(placement_of(kP));
  const auto result = group.run([](TaskContext& ctx) {
    const int right = (ctx.rank() + 1) % kP;
    const int left = (ctx.rank() + kP - 1) % kP;
    ByteBuffer out;
    out.put_u64(static_cast<std::uint64_t>(ctx.rank()));
    Message in = ctx.sendrecv(right, 3, std::move(out), left, 3);
    EXPECT_EQ(in.payload.get_u64(), static_cast<std::uint64_t>(left));
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, ExclusiveScan) {
  constexpr int kP = 6;
  TaskGroup group(placement_of(kP));
  const auto result = group.run([](TaskContext& ctx) {
    // value of task r = (r+1)*10; prefix on r = sum_{i<r} (i+1)*10.
    const auto value = static_cast<std::uint64_t>((ctx.rank() + 1) * 10);
    const std::uint64_t prefix = exclusive_scan_u64(ctx, value);
    std::uint64_t expected = 0;
    for (int i = 0; i < ctx.rank(); ++i) {
      expected += static_cast<std::uint64_t>((i + 1) * 10);
    }
    EXPECT_EQ(prefix, expected);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, ExclusiveScanSingleTask) {
  TaskGroup group(placement_of(1));
  const auto result = group.run([](TaskContext& ctx) {
    EXPECT_EQ(exclusive_scan_u64(ctx, 42), 0u);
  });
  EXPECT_TRUE(result.completed);
}

TEST(TaskContext, PerTaskRngIsDeterministicPerSeed) {
  std::uint64_t a0 = 0;
  std::uint64_t b0 = 0;
  for (int run = 0; run < 2; ++run) {
    TaskGroup group(placement_of(2), /*seed=*/99);
    group.run([&](TaskContext& ctx) {
      const std::uint64_t v = ctx.rng().next_u64();
      if (ctx.rank() == 0) {
        (run == 0 ? a0 : b0) = v;
      }
    });
  }
  EXPECT_EQ(a0, b0);
}

}  // namespace
