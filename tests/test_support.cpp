// Unit tests for the support layer: byte buffers, serialization, CRC-32C,
// deterministic RNG, statistics, units and the table printer.
#include <gtest/gtest.h>

#include <cstring>

#include "support/byte_buffer.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms::support;

TEST(ByteBuffer, ScalarRoundTrip) {
  ByteBuffer buf;
  buf.put_u8(0xab);
  buf.put_u32(0xdeadbeef);
  buf.put_u64(0x0123456789abcdefull);
  buf.put_i64(-42);
  buf.put_f64(3.14159);
  buf.put_bool(true);
  buf.put_bool(false);

  EXPECT_EQ(buf.get_u8(), 0xab);
  EXPECT_EQ(buf.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(buf.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(buf.get_i64(), -42);
  EXPECT_DOUBLE_EQ(buf.get_f64(), 3.14159);
  EXPECT_TRUE(buf.get_bool());
  EXPECT_FALSE(buf.get_bool());
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, StringAndBytesRoundTrip) {
  ByteBuffer buf;
  buf.put_string("hello drms");
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  buf.put_bytes(blob);
  buf.put_string("");

  EXPECT_EQ(buf.get_string(), "hello drms");
  EXPECT_EQ(buf.get_bytes(), blob);
  EXPECT_EQ(buf.get_string(), "");
}

TEST(ByteBuffer, ReadPastEndThrows) {
  ByteBuffer buf;
  buf.put_u32(1);
  (void)buf.get_u32();
  EXPECT_THROW((void)buf.get_u8(), ContractViolation);
}

TEST(ByteBuffer, RewindRereads) {
  ByteBuffer buf;
  buf.put_u64(99);
  EXPECT_EQ(buf.get_u64(), 99u);
  buf.rewind();
  EXPECT_EQ(buf.get_u64(), 99u);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: CRC-32C of "123456789" is 0xE3069283.
  const char* digits = "123456789";
  Crc32c crc;
  crc.update_raw(digits, std::strlen(digits));
  EXPECT_EQ(crc.value(), 0xE3069283u);

  // 32 zero bytes -> 0x8A9136AA (iSCSI test vector).
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7 + 1);
  }
  Crc32c inc;
  inc.update(std::span(data).subspan(0, 137));
  inc.update(std::span(data).subspan(137));
  EXPECT_EQ(inc.value(), crc32c(data));
}

TEST(Crc32c, CombineMatchesConcatenation) {
  Rng rng(31337);
  for (int iter = 0; iter < 20; ++iter) {
    const auto n1 = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    const auto n2 = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    std::vector<std::byte> a(n1);
    std::vector<std::byte> b(n2);
    for (auto& x : a) x = static_cast<std::byte>(rng.uniform_int(0, 255));
    for (auto& x : b) x = static_cast<std::byte>(rng.uniform_int(0, 255));
    std::vector<std::byte> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(crc32c_combine(crc32c(a), crc32c(b), b.size()), crc32c(ab));
  }
}

TEST(Crc32c, CombineWithEmptyIsIdentity) {
  const std::vector<std::byte> a{std::byte{1}, std::byte{2}};
  EXPECT_EQ(crc32c_combine(crc32c(a), 0, 0), crc32c(a));
}

TEST(Crc32c, MultiWayCombineIsAssociative) {
  // Folding chunk CRCs left-to-right gives the stream CRC regardless of
  // how many chunks there are — the property parallel streaming relies on.
  std::vector<std::byte> all(10000);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  for (const std::size_t parts : {1u, 3u, 7u, 100u}) {
    std::uint32_t combined = 0;
    const std::size_t chunk = all.size() / parts + 1;
    for (std::size_t off = 0; off < all.size(); off += chunk) {
      const std::size_t len = std::min(chunk, all.size() - off);
      const std::uint32_t c =
          crc32c(std::span(all).subspan(off, len));
      combined = crc32c_combine(combined, c, len);
    }
    EXPECT_EQ(combined, crc32c(all)) << parts << " parts";
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, JitterCentersOnOne) {
  Rng rng(99);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.jitter(0.1);
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.02);  // lognormal mean = exp(sigma^2/2) ~ 1.005
}

TEST(Rng, ZeroSigmaJitterIsExactlyOne) {
  Rng rng(99);
  EXPECT_EQ(rng.jitter(0.0), 1.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(12), "12 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(147 * kMiB), "147.0 MB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00 GB");
  EXPECT_DOUBLE_EQ(to_mib(kMiB), 1.0);
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"App", "Size"});
  t.add_row({"BT", "147"});
  t.add_rule();
  t.add_row({"LU", "9"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("App | Size"), std::string::npos);
  EXPECT_NE(out.find("BT  |  147"), std::string::npos);
  EXPECT_NE(out.find("LU  |    9"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Contracts, ViolationCarriesLocation) {
  try {
    DRMS_EXPECTS_MSG(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Errors, TaskKilledIsNotAnError) {
  // Application catch(const Error&) blocks must not swallow kill requests.
  const bool convertible =
      std::is_convertible_v<drms::support::TaskKilled*,
                            drms::support::Error*>;
  EXPECT_FALSE(convertible);
}

}  // namespace
