// Unit tests for the support layer: byte buffers, serialization, CRC-32C,
// deterministic RNG, statistics, units and the table printer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>

#include "support/byte_buffer.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/retry.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms::support;

TEST(ByteBuffer, ScalarRoundTrip) {
  ByteBuffer buf;
  buf.put_u8(0xab);
  buf.put_u32(0xdeadbeef);
  buf.put_u64(0x0123456789abcdefull);
  buf.put_i64(-42);
  buf.put_f64(3.14159);
  buf.put_bool(true);
  buf.put_bool(false);

  EXPECT_EQ(buf.get_u8(), 0xab);
  EXPECT_EQ(buf.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(buf.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(buf.get_i64(), -42);
  EXPECT_DOUBLE_EQ(buf.get_f64(), 3.14159);
  EXPECT_TRUE(buf.get_bool());
  EXPECT_FALSE(buf.get_bool());
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, StringAndBytesRoundTrip) {
  ByteBuffer buf;
  buf.put_string("hello drms");
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  buf.put_bytes(blob);
  buf.put_string("");

  EXPECT_EQ(buf.get_string(), "hello drms");
  EXPECT_EQ(buf.get_bytes(), blob);
  EXPECT_EQ(buf.get_string(), "");
}

TEST(ByteBuffer, ReadPastEndThrows) {
  ByteBuffer buf;
  buf.put_u32(1);
  (void)buf.get_u32();
  EXPECT_THROW((void)buf.get_u8(), ContractViolation);
}

TEST(ByteBuffer, RewindRereads) {
  ByteBuffer buf;
  buf.put_u64(99);
  EXPECT_EQ(buf.get_u64(), 99u);
  buf.rewind();
  EXPECT_EQ(buf.get_u64(), 99u);
}

TEST(ByteBuffer, UnderflowErrorCarriesCursorAndSizeContext) {
  ByteBuffer buf;
  buf.put_u32(7);
  (void)buf.get_u32();
  try {
    (void)buf.get_u64();
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("underflow"), std::string::npos);
    EXPECT_NE(what.find("8 bytes"), std::string::npos);   // wanted
    EXPECT_NE(what.find("cursor 4"), std::string::npos);  // position
    EXPECT_NE(what.find("size 4"), std::string::npos);    // buffer size
  }
}

TEST(ByteBuffer, LengthPrefixedUnderflowThrowsBeforePartialRead) {
  // A corrupt length prefix must raise the underflow error, not allocate
  // or partially read.
  ByteBuffer buf;
  buf.put_u64(1000);  // claims 1000 payload bytes; none follow
  const std::size_t cursor_before_payload = 8;
  EXPECT_THROW((void)buf.get_bytes(), ContractViolation);
  buf.rewind();
  EXPECT_THROW((void)buf.get_string(), ContractViolation);
  buf.rewind();
  (void)buf.get_u64();
  EXPECT_EQ(buf.cursor(), cursor_before_payload)
      << "failed read must not advance past the length prefix";
}

TEST(ByteBuffer, AppendUninitializedHandsOutWritableSpan) {
  ByteBuffer buf;
  buf.put_u32(0xaabbccdd);
  const std::span<std::byte> region = buf.append_uninitialized(3);
  ASSERT_EQ(region.size(), 3u);
  region[0] = std::byte{1};
  region[1] = std::byte{2};
  region[2] = std::byte{3};
  EXPECT_EQ(buf.size(), 7u);
  EXPECT_EQ(buf.get_u32(), 0xaabbccddu);
  std::byte tail[3];
  buf.read_raw(tail, 3);
  EXPECT_EQ(tail[0], std::byte{1});
  EXPECT_EQ(tail[1], std::byte{2});
  EXPECT_EQ(tail[2], std::byte{3});
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, ResizeUninitializedClampsCursorOnShrink) {
  ByteBuffer buf;
  buf.put_u64(1);
  buf.put_u64(2);
  (void)buf.get_u64();
  (void)buf.get_u64();
  EXPECT_EQ(buf.cursor(), 16u);
  buf.resize_uninitialized(4);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.cursor(), 4u);
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, SpanConstructorCopiesSubRange) {
  ByteBuffer src;
  src.put_u32(0x01020304);
  src.put_u32(0x05060708);
  ByteBuffer view(src.bytes().subspan(4, 4));
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(view.get_u32(), 0x05060708u);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: CRC-32C of "123456789" is 0xE3069283.
  const char* digits = "123456789";
  Crc32c crc;
  crc.update_raw(digits, std::strlen(digits));
  EXPECT_EQ(crc.value(), 0xE3069283u);

  // 32 zero bytes -> 0x8A9136AA (iSCSI test vector).
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, KnownVectorsOnEveryAvailableKernel) {
  // RFC 3720 test vectors, checked against EVERY dispatchable kernel —
  // a hardware path that disagrees with the portable one would corrupt
  // cross-host checkpoint verification silently.
  const char* digits = "123456789";
  std::vector<std::byte> digit_bytes(9);
  std::memcpy(digit_bytes.data(), digits, 9);
  const std::vector<std::byte> zeros(32, std::byte{0});
  const std::vector<std::byte> ones(32, std::byte{0xff});
  for (const auto kernel :
       {Crc32cKernel::kBytewise, Crc32cKernel::kSlicing16,
        Crc32cKernel::kHardware}) {
    if (!crc32c_kernel_available(kernel)) {
      continue;
    }
    EXPECT_EQ(crc32c(kernel, digit_bytes), 0xE3069283u)
        << to_string(kernel);
    EXPECT_EQ(crc32c(kernel, zeros), 0x8A9136AAu) << to_string(kernel);
    EXPECT_EQ(crc32c(kernel, ones), 0x62A8AB43u) << to_string(kernel);
    EXPECT_EQ(crc32c(kernel, {}), 0u) << to_string(kernel);
  }
}

TEST(Crc32c, ActiveKernelIsAvailableAndUsedByDefaultPath) {
  const Crc32cKernel active = crc32c_active_kernel();
  EXPECT_TRUE(crc32c_kernel_available(active));
  std::vector<std::byte> data(4097);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 + 5);
  }
  EXPECT_EQ(crc32c(data), crc32c(active, data));
}

TEST(Crc32c, KernelsAgreeOnRandomSizesAndAlignments) {
  // Identical values across kernels for arbitrary lengths and (crucially
  // for the hardware kernels' head/tail handling) arbitrary alignments.
  Rng rng(0xC3C3);
  std::vector<std::byte> pool(16384 + 64);
  for (auto& x : pool) {
    x = static_cast<std::byte>(rng.uniform_int(0, 255));
  }
  for (int iter = 0; iter < 50; ++iter) {
    const auto offset = static_cast<std::size_t>(rng.uniform_int(0, 63));
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 16384));
    const std::span<const std::byte> view =
        std::span(pool).subspan(offset, len);
    const std::uint32_t reference = crc32c(Crc32cKernel::kBytewise, view);
    for (const auto kernel :
         {Crc32cKernel::kSlicing16, Crc32cKernel::kHardware}) {
      if (!crc32c_kernel_available(kernel)) {
        continue;
      }
      EXPECT_EQ(crc32c(kernel, view), reference)
          << to_string(kernel) << " offset=" << offset << " len=" << len;
    }
  }
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7 + 1);
  }
  Crc32c inc;
  inc.update(std::span(data).subspan(0, 137));
  inc.update(std::span(data).subspan(137));
  EXPECT_EQ(inc.value(), crc32c(data));
}

TEST(Crc32c, CombineMatchesConcatenation) {
  Rng rng(31337);
  for (int iter = 0; iter < 20; ++iter) {
    const auto n1 = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    const auto n2 = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    std::vector<std::byte> a(n1);
    std::vector<std::byte> b(n2);
    for (auto& x : a) x = static_cast<std::byte>(rng.uniform_int(0, 255));
    for (auto& x : b) x = static_cast<std::byte>(rng.uniform_int(0, 255));
    std::vector<std::byte> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(crc32c_combine(crc32c(a), crc32c(b), b.size()), crc32c(ab));
  }
}

TEST(Crc32c, CombineWithEmptyIsIdentity) {
  const std::vector<std::byte> a{std::byte{1}, std::byte{2}};
  EXPECT_EQ(crc32c_combine(crc32c(a), 0, 0), crc32c(a));
}

TEST(Crc32c, MultiWayCombineIsAssociative) {
  // Folding chunk CRCs left-to-right gives the stream CRC regardless of
  // how many chunks there are — the property parallel streaming relies on.
  std::vector<std::byte> all(10000);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  for (const std::size_t parts : {1u, 3u, 7u, 100u}) {
    std::uint32_t combined = 0;
    const std::size_t chunk = all.size() / parts + 1;
    for (std::size_t off = 0; off < all.size(); off += chunk) {
      const std::size_t len = std::min(chunk, all.size() - off);
      const std::uint32_t c =
          crc32c(std::span(all).subspan(off, len));
      combined = crc32c_combine(combined, c, len);
    }
    EXPECT_EQ(combined, crc32c(all)) << parts << " parts";
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, JitterCentersOnOne) {
  Rng rng(99);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.jitter(0.1);
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.02);  // lognormal mean = exp(sigma^2/2) ~ 1.005
}

TEST(Rng, ZeroSigmaJitterIsExactlyOne) {
  Rng rng(99);
  EXPECT_EQ(rng.jitter(0.0), 1.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(12), "12 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(147 * kMiB), "147.0 MB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00 GB");
  EXPECT_DOUBLE_EQ(to_mib(kMiB), 1.0);
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"App", "Size"});
  t.add_row({"BT", "147"});
  t.add_rule();
  t.add_row({"LU", "9"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("App | Size"), std::string::npos);
  EXPECT_NE(out.find("BT  |  147"), std::string::npos);
  EXPECT_NE(out.find("LU  |    9"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Contracts, ViolationCarriesLocation) {
  try {
    DRMS_EXPECTS_MSG(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Errors, TaskKilledIsNotAnError) {
  // Application catch(const Error&) blocks must not swallow kill requests.
  const bool convertible =
      std::is_convertible_v<drms::support::TaskKilled*,
                            drms::support::Error*>;
  EXPECT_FALSE(convertible);
}

TEST(Retry, DefaultPolicyKeepsTheExactLegacyBackoffSequence) {
  RetryPolicy policy;  // jitter_seed == 0, no total budget
  using std::chrono::microseconds;
  EXPECT_EQ(retry_backoff(policy, 1), microseconds(50));
  EXPECT_EQ(retry_backoff(policy, 2), microseconds(100));
  EXPECT_EQ(retry_backoff(policy, 3), microseconds(200));
}

TEST(Retry, SeededJitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.jitter_seed = 7;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const auto step = RetryPolicy{}.backoff_base * (1 << (attempt - 1));
    const auto jittered = retry_backoff(policy, attempt);
    // Drawn from [step/2, step], and a pure function of (seed, attempt).
    EXPECT_GE(jittered, step / 2) << attempt;
    EXPECT_LE(jittered, step) << attempt;
    EXPECT_EQ(jittered, retry_backoff(policy, attempt)) << attempt;
  }
  // Distinct seeds desynchronize: at least one attempt must differ.
  RetryPolicy other = policy;
  other.jitter_seed = 8;
  bool any_differ = false;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    any_differ |= retry_backoff(policy, attempt) != retry_backoff(other, attempt);
  }
  EXPECT_TRUE(any_differ);
}

TEST(Retry, RetriesTransientsUpToTheAttemptBudget) {
  RetryPolicy policy;
  policy.attempts = 3;
  policy.backoff_base = std::chrono::microseconds(1);
  int calls = 0;
  const int got = retry_io(
      [&calls] {
        if (++calls < 3) {
          throw TransientIoError("hiccup");
        }
        return 42;
      },
      policy);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);

  calls = 0;
  EXPECT_THROW(retry_io(
                   [&calls]() -> int {
                     ++calls;
                     throw TransientIoError("always");
                   },
                   policy),
               TransientIoError);
  EXPECT_EQ(calls, 3);  // budget bounds the attempts
}

TEST(Retry, TotalBackoffBudgetBoundsTheCumulativeSleep) {
  // A generous attempt budget but a 3 ms total sleep budget: the retry
  // storm must give up once the cumulative backoff is spent, well before
  // the attempt count is.
  RetryPolicy policy;
  policy.attempts = 1000;
  policy.backoff_base = std::chrono::microseconds(1000);  // 1,2,4,... ms
  policy.total_backoff_budget = std::chrono::microseconds(3000);
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(retry_io(
                   [&calls]() -> int {
                     ++calls;
                     throw TransientIoError("saturated");
                   },
                   policy),
               TransientIoError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Sleeps 1 ms, 2 ms (clamped to the remaining budget), then rethrows:
  // far fewer than the 1000 allowed attempts.
  EXPECT_LE(calls, 4);
  EXPECT_GE(elapsed, std::chrono::microseconds(3000));
}

TEST(Retry, ExactBudgetExhaustionStillRunsThePaidForAttempt) {
  // Budget == the sum of the first two backoffs (1 ms + 2 ms) exactly.
  // The budget bounds the SLEEPS, never the attempt a completed sleep
  // already bought: attempt 3 (paid for by the second sleep) must still
  // run, and can succeed.
  RetryPolicy policy;
  policy.attempts = 1000;
  policy.backoff_base = std::chrono::microseconds(1000);
  policy.total_backoff_budget = std::chrono::microseconds(3000);
  int calls = 0;
  const int got = retry_io(
      [&calls] {
        if (++calls < 3) {
          throw TransientIoError("hiccup");
        }
        return 7;
      },
      policy);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(calls, 3);

  // When attempt 3 also fails, the exactly-exhausted budget rethrows
  // without sleeping again: three calls, never a fourth.
  calls = 0;
  EXPECT_THROW(retry_io(
                   [&calls]() -> int {
                     ++calls;
                     throw TransientIoError("saturated");
                   },
                   policy),
               TransientIoError);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, HugeAttemptIndicesSaturateInsteadOfOverflowing) {
  // attempts can legitimately be huge when total_backoff_budget is what
  // bounds the storm; the exponential step must saturate, not shift past
  // the int width into undefined behaviour.
  RetryPolicy policy;
  EXPECT_EQ(retry_backoff(policy, 40), retry_backoff(policy, 31));
  EXPECT_GT(retry_backoff(policy, 1000).count(), 0);
  EXPECT_GE(retry_backoff(policy, 1000), retry_backoff(policy, 3));
}

TEST(Retry, NonTransientErrorsPropagateImmediately) {
  int calls = 0;
  EXPECT_THROW(retry_io([&calls]() -> int {
                 ++calls;
                 throw IoError("hard failure");
               }),
               IoError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
