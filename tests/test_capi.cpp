// Tests for the C binding: the Figure-1 skeleton written against the C
// API, round-tripped through a reconfigured restart. Only drms_c.h
// symbols are used inside the task function.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "capi/drms_c.h"

namespace {

constexpr int64_t kN = 6;

struct CAppState {
  const char* prefix = "c.state";
  int iterations = 9;
  int stop_at = -1;
  // Collected by rank 0:
  std::atomic<int> restarted{-1};
  std::atomic<long long> start_iteration{-1};
  std::atomic<int> delta{-1000};
  std::atomic<int> failures{0};
  // Order-independent digest over owned points (sum of value*tag).
  std::atomic<long long> digest_millis{0};
};

#define C_CHECK(expr)                                           \
  do {                                                          \
    if ((expr) != DRMS_OK) {                                    \
      state->failures.fetch_add(1);                             \
      return;                                                   \
    }                                                           \
  } while (0)

void c_task(drms_context_t* ctx, void* user) {
  auto* state = static_cast<CAppState*>(user);

  int64_t it = 0;
  C_CHECK(drms_register_i64(ctx, "it", &it));
  C_CHECK(drms_initialize(ctx));

  const int64_t lo[3] = {0, 0, 0};
  const int64_t hi[3] = {kN - 1, kN - 1, kN - 1};
  int u = -1;
  C_CHECK(drms_create_array(ctx, "u", 3, lo, hi, &u));
  const int64_t shadow[3] = {0, 0, 0};
  C_CHECK(drms_distribute_block(ctx, u, shadow));

  if (drms_restarted(ctx) == 0) {
    for (int64_t z = 0; z < kN; ++z) {
      for (int64_t y = 0; y < kN; ++y) {
        for (int64_t x = 0; x < kN; ++x) {
          const int64_t p[3] = {x, y, z};
          if (drms_array_owns(ctx, u, p)) {
            C_CHECK(drms_array_set(ctx, u, p,
                                   1.0 + 0.001 * (double)(x + 7 * y +
                                                          49 * z)));
          }
        }
      }
    }
    C_CHECK(drms_barrier(ctx));
  }
  if (drms_rank(ctx) == 0) {
    state->start_iteration.store(it);
    state->restarted.store(drms_restarted(ctx));
  }

  const int stop = state->stop_at >= 0 ? state->stop_at
                                       : state->iterations;
  while (it < stop) {
    if (it > 0 && it % 3 == 0) {
      int status = 0;
      int delta = 0;
      C_CHECK(drms_reconfig_checkpoint(ctx, state->prefix, &status,
                                       &delta));
      if (drms_rank(ctx) == 0 && status == DRMS_STATUS_RESTARTED) {
        state->delta.store(delta);
      }
    }
    for (int64_t z = 0; z < kN; ++z) {
      for (int64_t y = 0; y < kN; ++y) {
        for (int64_t x = 0; x < kN; ++x) {
          const int64_t p[3] = {x, y, z};
          if (drms_array_owns(ctx, u, p)) {
            double v = 0;
            C_CHECK(drms_array_get(ctx, u, p, &v));
            C_CHECK(drms_array_set(ctx, u, p, v * 1.01 + 0.02));
          }
        }
      }
    }
    C_CHECK(drms_barrier(ctx));
    ++it;
  }

  // Digest: order-independent sum of round(value * 1e3) over owned points.
  long long local = 0;
  for (int64_t z = 0; z < kN; ++z) {
    for (int64_t y = 0; y < kN; ++y) {
      for (int64_t x = 0; x < kN; ++x) {
        const int64_t p[3] = {x, y, z};
        if (drms_array_owns(ctx, u, p)) {
          double v = 0;
          C_CHECK(drms_array_get(ctx, u, p, &v));
          local += (long long)std::llround(v * 1e6);
        }
      }
    }
  }
  state->digest_millis.fetch_add(local);
}

TEST(CApi, FigureOneSkeletonRoundTrip) {
  // Reference: uninterrupted run on 4 tasks.
  drms_volume_t* ref_volume = drms_volume_create(16);
  ASSERT_NE(ref_volume, nullptr);
  CAppState reference;
  drms_run_options_t options{};
  options.app_name = "capp";
  options.tasks = 4;
  options.restart_prefix = nullptr;
  options.mode = DRMS_MODE_DRMS;
  ASSERT_EQ(drms_run_spmd(ref_volume, &options, c_task, &reference),
            DRMS_OK);
  EXPECT_EQ(reference.failures.load(), 0);
  EXPECT_EQ(reference.restarted.load(), 0);
  drms_volume_destroy(ref_volume);

  // Interrupted + reconfigured restart on 3 tasks.
  drms_volume_t* volume = drms_volume_create(16);
  ASSERT_NE(volume, nullptr);
  CAppState phase1;
  phase1.stop_at = 7;  // past the it=6 checkpoint
  ASSERT_EQ(drms_run_spmd(volume, &options, c_task, &phase1), DRMS_OK);
  EXPECT_EQ(drms_volume_checkpoint_exists(volume, "c.state"), 1);

  CAppState resumed;
  drms_run_options_t restart_options = options;
  restart_options.tasks = 3;
  restart_options.restart_prefix = "c.state";
  ASSERT_EQ(drms_run_spmd(volume, &restart_options, c_task, &resumed),
            DRMS_OK);
  EXPECT_EQ(resumed.failures.load(), 0);
  EXPECT_EQ(resumed.restarted.load(), 1);
  EXPECT_EQ(resumed.start_iteration.load(), 6);
  EXPECT_EQ(resumed.delta.load(), -1);
  EXPECT_EQ(resumed.digest_millis.load(), reference.digest_millis.load());
  drms_volume_destroy(volume);
}

TEST(CApi, ErrorReporting) {
  drms_volume_t* volume = drms_volume_create(16);
  ASSERT_NE(volume, nullptr);
  drms_run_options_t options{};
  options.app_name = "errs";
  options.tasks = 1;
  options.mode = DRMS_MODE_DRMS;

  static std::atomic<bool> saw_errors{false};
  saw_errors = false;
  const auto body = [](drms_context_t* ctx, void*) {
    // initialize before register order violation:
    if (drms_initialize(ctx) != DRMS_OK) {
      return;
    }
    int64_t dummy_lo[1] = {0};
    int64_t dummy_hi[1] = {3};
    int id = -1;
    if (drms_create_array(ctx, "a", 1, dummy_lo, dummy_hi, &id) !=
        DRMS_OK) {
      return;
    }
    // Bad array id:
    double v = 0;
    const int64_t p[1] = {0};
    if (drms_array_get(ctx, 99, p, &v) == DRMS_ERR &&
        drms_last_error(ctx)[0] != '\0') {
      saw_errors = true;
    }
  };
  ASSERT_EQ(drms_run_spmd(volume, &options, body, nullptr), DRMS_OK);
  EXPECT_TRUE(saw_errors.load());
  drms_volume_destroy(volume);
}

TEST(CApi, CommitQueriesFsckAndGc) {
  drms_volume_t* volume = drms_volume_create(8);
  ASSERT_NE(volume, nullptr);
  CAppState state;
  state.prefix = "c.commit";
  state.iterations = 4;  // one checkpoint, at it == 3
  drms_run_options_t options{};
  options.app_name = "commitapp";
  options.tasks = 2;
  options.mode = DRMS_MODE_DRMS;
  ASSERT_EQ(drms_run_spmd(volume, &options, c_task, &state), DRMS_OK);
  ASSERT_EQ(state.failures.load(), 0);

  // The published state is both present and committed; the volume is
  // crash-consistent, so fsck finds nothing and gc reclaims nothing.
  EXPECT_EQ(drms_volume_checkpoint_exists(volume, "c.commit"), 1);
  EXPECT_EQ(drms_volume_checkpoint_committed(volume, "c.commit"), 1);
  EXPECT_EQ(drms_volume_checkpoint_committed(volume, "nope"), 0);
  EXPECT_EQ(drms_volume_fsck(volume), 0);
  EXPECT_EQ(drms_volume_gc(volume), 0);
  EXPECT_EQ(drms_volume_fsck(volume), 0);

  // Null handling.
  EXPECT_EQ(drms_volume_checkpoint_committed(nullptr, "p"), 0);
  EXPECT_EQ(drms_volume_checkpoint_committed(volume, nullptr), 0);
  EXPECT_EQ(drms_volume_fsck(nullptr), DRMS_ERR);
  EXPECT_EQ(drms_volume_gc(nullptr), DRMS_ERR);
  drms_volume_destroy(volume);
}

TEST(CApi, NullArgumentsAreRejected) {
  EXPECT_EQ(drms_volume_create(0), nullptr);
  drms_run_options_t options{};
  options.tasks = 1;
  options.app_name = "x";
  EXPECT_EQ(drms_run_spmd(nullptr, &options, nullptr, nullptr), DRMS_ERR);
  EXPECT_EQ(drms_rank(nullptr), -1);
  EXPECT_EQ(drms_volume_checkpoint_exists(nullptr, "p"), 0);
  drms_volume_destroy(nullptr);  // must be safe
}

}  // namespace
