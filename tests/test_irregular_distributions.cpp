// Property tests for IRREGULAR distributions — the paper's claim that
// DRMS "covers a wider class of applications, including those with sparse
// and unstructured data distributed in a non-uniform manner" (§7), and
// that array sections "are not limited to regular sections but also
// include sections defined by lists of indices" (§3.1).
//
// Random index-list partitions of the global index space are pushed
// through the full machinery: validation, redistribution, streaming to a
// file, and reconfigured reload under a different irregular partition.
#include <gtest/gtest.h>

#include "core/redistribute.hpp"
#include "core/streamer.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "support/rng.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::support::Rng;
using drms::test::placement_of;
using drms::test::tag_of;

/// Random partition of [0, n) x [0, m) into `tasks` irregular sections:
/// each ROW of the 2-D space is assigned to a random task as an
/// index-list range (rows keep axis 1 contiguous — assigned slices must
/// be cross products, so we partition along one axis with index lists).
DistSpec random_row_partition(Index rows, Index cols, int tasks,
                              Rng& rng) {
  std::vector<std::vector<Index>> rows_of(
      static_cast<std::size_t>(tasks));
  for (Index r = 0; r < rows; ++r) {
    rows_of[static_cast<std::size_t>(
        rng.uniform_int(0, tasks - 1))].push_back(r);
  }
  const Slice box{{Range::contiguous(0, rows - 1),
                   Range::contiguous(0, cols - 1)}};
  std::vector<TaskSection> sections;
  for (int t = 0; t < tasks; ++t) {
    Slice assigned =
        rows_of[static_cast<std::size_t>(t)].empty()
            ? Slice::empty_of_rank(2)
            : Slice{{Range::of_indices(rows_of[static_cast<std::size_t>(t)]),
                     Range::contiguous(0, cols - 1)}};
    sections.push_back(TaskSection{assigned, assigned});
  }
  return DistSpec(box, std::move(sections));
}

void fill_tagged_irregular(DistArray& array, int rank) {
  const Slice& assigned = array.distribution().assigned(rank);
  if (assigned.empty()) {
    return;
  }
  assigned.for_each_column_major([&](std::span<const Index> p) {
    array.local(rank).set_f64(p, tag_of(p));
  });
}

int count_assigned_mismatches(const DistArray& array, int rank) {
  const Slice& assigned = array.distribution().assigned(rank);
  int bad = 0;
  assigned.for_each_column_major([&](std::span<const Index> p) {
    if (array.local(rank).get_f64(p) != tag_of(p)) {
      ++bad;
    }
  });
  return bad;
}

class IrregularSweep : public ::testing::TestWithParam<int> {};

TEST_P(IrregularSweep, RedistributeBetweenRandomIndexListPartitions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  constexpr int kP = 5;
  constexpr Index kRows = 24;
  constexpr Index kCols = 7;

  for (int iter = 0; iter < 6; ++iter) {
    const DistSpec from = random_row_partition(kRows, kCols, kP, rng);
    const DistSpec to = random_row_partition(kRows, kCols, kP, rng);
    TaskGroup group(placement_of(kP));
    DistArray array("s", from.global_box(), sizeof(double), kP);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(from);
      }
      ctx.barrier();
      fill_tagged_irregular(array, ctx.rank());
      ctx.barrier();
      redistribute(ctx, array, to);
      EXPECT_EQ(count_assigned_mismatches(array, ctx.rank()), 0);
    });
    EXPECT_TRUE(result.completed);
  }
}

TEST_P(IrregularSweep, StreamAndReloadUnderDifferentIrregularPartition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  constexpr int kP = 4;
  constexpr Index kRows = 18;
  constexpr Index kCols = 5;

  const DistSpec write_spec = random_row_partition(kRows, kCols, kP, rng);
  const DistSpec read_spec = random_row_partition(kRows, kCols, kP, rng);
  Volume volume(16);
  volume.create("irr");

  // Write under one irregular partition...
  std::uint32_t write_crc = 0;
  {
    TaskGroup group(placement_of(kP));
    DistArray array("s", write_spec.global_box(), sizeof(double), kP);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(write_spec);
      }
      ctx.barrier();
      fill_tagged_irregular(array, ctx.rank());
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {}, 256);
      std::uint32_t crc = 0;
      streamer.write_section(ctx, array, array.global_box(),
                             volume.open("irr"), 0, kP, &crc);
      if (ctx.rank() == 0) {
        write_crc = crc;
      }
    });
    ASSERT_TRUE(result.completed);
  }
  // ...reload under another; the values land on whoever owns them now.
  {
    TaskGroup group(placement_of(kP));
    DistArray array("s", read_spec.global_box(), sizeof(double), kP);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(read_spec);
      }
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {}, 256);
      std::uint32_t crc = 0;
      streamer.read_section(ctx, array, array.global_box(),
                            volume.open("irr"), 0, kP, &crc);
      EXPECT_EQ(crc, write_crc);
      ctx.barrier();
      EXPECT_EQ(count_assigned_mismatches(array, ctx.rank()), 0);
    });
    ASSERT_TRUE(result.completed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularSweep, ::testing::Range(1, 7));

TEST(Irregular, StridedCheckerboardAssignment) {
  // A strided 2-task split: task 0 owns even rows, task 1 odd rows.
  constexpr Index kN = 16;
  const Slice box{{Range::contiguous(0, kN - 1),
                   Range::contiguous(0, kN - 1)}};
  const Slice evens{{Range::strided(0, kN - 2, 2),
                     Range::contiguous(0, kN - 1)}};
  const Slice odds{{Range::strided(1, kN - 1, 2),
                    Range::contiguous(0, kN - 1)}};
  const DistSpec striped(box, {TaskSection{evens, evens},
                               TaskSection{odds, odds}});
  const std::array<int, 2> grid{2, 1};
  const std::array<Index, 2> shadow{0, 0};
  const DistSpec blocked = DistSpec::block(box, grid, shadow);

  TaskGroup group(placement_of(2));
  DistArray array("cb", box, sizeof(double), 2);
  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(striped);
    }
    ctx.barrier();
    fill_tagged_irregular(array, ctx.rank());
    ctx.barrier();
    redistribute(ctx, array, blocked);  // strided -> block
    EXPECT_EQ(count_assigned_mismatches(array, ctx.rank()), 0);
    redistribute(ctx, array, striped);  // and back
    EXPECT_EQ(count_assigned_mismatches(array, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

}  // namespace
