// Tests for LocalArray: column-major layout, offset computation,
// extract/insert round trips over contiguous and irregular sub-slices.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "core/local_array.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using namespace drms::core;
using drms::support::ContractViolation;

Slice box2(Index r0, Index r1, Index c0, Index c1) {
  return Slice({Range::contiguous(r0, r1), Range::contiguous(c0, c1)});
}

TEST(LocalArray, AllocationAndZeroInit) {
  LocalArray a(box2(2, 5, 10, 12), sizeof(double));
  EXPECT_EQ(a.element_count(), 4 * 3);
  EXPECT_EQ(a.byte_size(), 12 * sizeof(double));
  const std::array<Index, 2> p{3, 11};
  EXPECT_DOUBLE_EQ(a.get_f64(p), 0.0);
}

TEST(LocalArray, DefaultConstructedIsEmpty) {
  const LocalArray a;
  EXPECT_EQ(a.element_count(), 0);
  EXPECT_EQ(a.byte_size(), 0u);
}

TEST(LocalArray, ColumnMajorOffsets) {
  LocalArray a(box2(0, 2, 0, 1), sizeof(double));  // 3 rows x 2 cols
  const std::array<Index, 2> p00{0, 0};
  const std::array<Index, 2> p10{1, 0};
  const std::array<Index, 2> p01{0, 1};
  EXPECT_EQ(a.offset_of(p00), 0u);
  EXPECT_EQ(a.offset_of(p10), sizeof(double));          // axis 0 fastest
  EXPECT_EQ(a.offset_of(p01), 3 * sizeof(double));      // stride = |axis0|
  const std::array<Index, 2> outside{3, 0};
  EXPECT_FALSE(a.offset_of(outside).has_value());
}

TEST(LocalArray, SetGetElements) {
  LocalArray a(box2(0, 3, 0, 3), sizeof(double));
  const std::array<Index, 2> p{2, 1};
  a.set_f64(p, 42.5);
  EXPECT_DOUBLE_EQ(a.get_f64(p), 42.5);
  const std::array<Index, 2> q{1, 2};
  EXPECT_DOUBLE_EQ(a.get_f64(q), 0.0);
}

TEST(LocalArray, GetOutsideMappedThrows) {
  LocalArray a(box2(0, 3, 0, 3), sizeof(double));
  const std::array<Index, 2> p{4, 0};
  EXPECT_THROW((void)a.get_f64(p), ContractViolation);
}

/// Fill with a position-identifying pattern value.
double tag_of(std::span<const Index> p) {
  double v = 0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    v = v * 1000 + static_cast<double>(p[k] + 1);
  }
  return v;
}

void fill_tagged(LocalArray& a) {
  a.mapped().for_each_column_major(
      [&](std::span<const Index> p) { a.set_f64(p, tag_of(p)); });
}

TEST(LocalArray, ExtractIsStreamOrdered) {
  LocalArray a(box2(0, 3, 0, 3), sizeof(double));
  fill_tagged(a);
  const Slice sub = box2(1, 2, 1, 2);
  std::vector<std::byte> out(static_cast<std::size_t>(
      sub.element_count() * static_cast<Index>(sizeof(double))));
  a.extract(sub, out);
  std::vector<double> got(static_cast<std::size_t>(sub.element_count()));
  std::memcpy(got.data(), out.data(), out.size());

  std::vector<double> expected;
  sub.for_each_column_major(
      [&](std::span<const Index> p) { expected.push_back(tag_of(p)); });
  EXPECT_EQ(got, expected);
}

TEST(LocalArray, InsertExtractRoundTripIrregular) {
  LocalArray a(box2(0, 9, 0, 9), sizeof(double));
  fill_tagged(a);
  // Strided + index-list sub-slice (irregular in both axes).
  const Slice sub{{Range::strided(1, 9, 2),
                   Range::of_indices({0, 3, 4, 9})}};
  std::vector<std::byte> buf(static_cast<std::size_t>(
      sub.element_count() * static_cast<Index>(sizeof(double))));
  a.extract(sub, buf);

  LocalArray b(box2(0, 9, 0, 9), sizeof(double));
  b.insert(sub, buf);
  sub.for_each_column_major([&](std::span<const Index> p) {
    EXPECT_DOUBLE_EQ(b.get_f64(p), tag_of(p));
  });
  // Elements outside the sub-slice stay zero.
  const std::array<Index, 2> untouched{0, 0};
  EXPECT_DOUBLE_EQ(b.get_f64(untouched), 0.0);
}

TEST(LocalArray, ExtractOutsideMappedThrows) {
  LocalArray a(box2(0, 3, 0, 3), sizeof(double));
  const Slice sub = box2(2, 5, 0, 1);
  std::vector<std::byte> out(1000);
  EXPECT_THROW(a.extract(sub, out), ContractViolation);
}

TEST(LocalArray, ExtractBufferTooSmallThrows) {
  LocalArray a(box2(0, 3, 0, 3), sizeof(double));
  std::vector<std::byte> out(8);  // one element; sub needs four
  EXPECT_THROW(a.extract(box2(0, 1, 0, 1), out), ContractViolation);
}

TEST(LocalArray, TypedSpanView) {
  LocalArray a(box2(0, 1, 0, 1), sizeof(double));
  auto view = a.as_f64();
  ASSERT_EQ(view.size(), 4u);
  view[0] = 1.5;
  const std::array<Index, 2> p{0, 0};
  EXPECT_DOUBLE_EQ(a.get_f64(p), 1.5);
}

TEST(LocalArray, NonDoubleElementSize) {
  LocalArray a(box2(0, 3, 0, 0), 4);  // 4-byte elements
  EXPECT_EQ(a.byte_size(), 16u);
  EXPECT_THROW((void)a.as_f64(), ContractViolation);
}

TEST(LocalArray, MappedWithIrregularRanges) {
  // Mapped sections themselves can be index-list based (the paper's
  // sparse/unstructured support).
  const Slice mapped{{Range::of_indices({2, 3, 7, 8}),
                      Range::strided(0, 4, 2)}};
  LocalArray a(mapped, sizeof(double));
  EXPECT_EQ(a.element_count(), 4 * 3);
  fill_tagged(a);
  const Slice sub{{Range::of_indices({3, 7}), Range::single(2)}};
  std::vector<std::byte> buf(2 * sizeof(double));
  a.extract(sub, buf);
  std::vector<double> got(2);
  std::memcpy(got.data(), buf.data(), buf.size());
  const std::array<Index, 2> p0{3, 2};
  const std::array<Index, 2> p1{7, 2};
  EXPECT_DOUBLE_EQ(got[0], tag_of(p0));
  EXPECT_DOUBLE_EQ(got[1], tag_of(p1));
}

/// Property sweep: extract -> insert into a differently-mapped local is
/// value-preserving for random sub-slices.
class LocalArrayProperty : public ::testing::TestWithParam<int> {};

TEST_P(LocalArrayProperty, ExtractInsertAcrossMappings) {
  drms::support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761);
  for (int iter = 0; iter < 15; ++iter) {
    LocalArray src(box2(0, 11, 0, 11), sizeof(double));
    fill_tagged(src);
    // Destination mapped section: a shifted window that still covers the
    // chosen sub-slice.
    const Index r0 = rng.uniform_int(0, 4);
    const Index c0 = rng.uniform_int(0, 4);
    const Slice sub = box2(r0, r0 + rng.uniform_int(0, 5),
                           c0, c0 + rng.uniform_int(0, 5));
    LocalArray dst(box2(0, 11, 0, 11), sizeof(double));

    std::vector<std::byte> buf(static_cast<std::size_t>(
        sub.element_count() * static_cast<Index>(sizeof(double))));
    src.extract(sub, buf);
    dst.insert(sub, buf);
    sub.for_each_column_major([&](std::span<const Index> p) {
      EXPECT_DOUBLE_EQ(dst.get_f64(p), tag_of(p));
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalArrayProperty, ::testing::Range(1, 6));

}  // namespace
