// Tests for block-level delta generations: the block codecs (known-answer
// + property tests mirroring the CRC suite), the runtime dirty tracking,
// the chained write/restore path, and the chain-aware catalog (GC keeps a
// base alive while a kept delta depends on it; fsck reports a delta whose
// base is gone as torn).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "core/checkpoint_catalog.hpp"
#include "core/checkpoint_format.hpp"
#include "core/delta_format.hpp"
#include "core/drms_context.hpp"
#include "core/streamer.hpp"
#include "rt/task_group.hpp"
#include "support/block_codec.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
namespace support = drms::support;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::placement_of;
using drms::test::tag_of;
using support::BlockCodec;

constexpr Index kN = 8;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 16 * 1024;
  m.system_bytes = 16 * 1024;
  return m;
}

/// Deterministic pseudo-random bytes (xorshift64*) — incompressible for
/// both in-tree codecs.
std::vector<std::byte> noise(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  std::uint64_t x = seed | 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x * 0x2545f4914f6cdd1dull >> 56);
  }
  return out;
}

/// Solver-like bytes: long zero runs (halo padding) interleaved with
/// slowly varying doubles — compressible by both codecs.
std::vector<std::byte> solver_like(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n, std::byte{0});
  std::uint64_t x = seed | 1;
  for (std::size_t i = 0; i + sizeof(double) <= n; i += sizeof(double)) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    if (x % 3 == 0) {
      continue;  // leave a zero-run hole
    }
    const double v = 0.25 * static_cast<double>(i % 97);
    std::memcpy(out.data() + i, &v, sizeof(double));
  }
  return out;
}

std::vector<std::byte> round_trip(BlockCodec requested,
                                  std::span<const std::byte> raw,
                                  BlockCodec* used = nullptr) {
  support::ByteBuffer stored;
  const BlockCodec actual = support::block_encode(requested, raw, stored);
  if (used != nullptr) {
    *used = actual;
  }
  support::ByteBuffer decoded;
  support::block_decode(actual, stored.bytes(), raw.size(), decoded);
  const auto span = decoded.bytes();
  return {span.begin(), span.end()};
}

TEST(DeltaCodec, AllZeroBlockCollapses) {
  const std::vector<std::byte> raw(64 * 1024, std::byte{0});
  for (const BlockCodec codec :
       {BlockCodec::kRaw, BlockCodec::kZeroRle, BlockCodec::kLz}) {
    support::ByteBuffer stored;
    const BlockCodec used = support::block_encode(codec, raw, stored);
    if (codec != BlockCodec::kRaw) {
      EXPECT_EQ(used, codec) << support::to_string(codec);
      // A 64 KiB zero block must collapse: zero-RLE to one record, LZ to
      // one max-length match per ~260 bytes (its match length cap).
      const std::size_t bound =
          codec == BlockCodec::kZeroRle ? raw.size() / 1000 : raw.size() / 50;
      EXPECT_LT(stored.size(), bound) << support::to_string(codec);
    }
    support::ByteBuffer decoded;
    support::block_decode(used, stored.bytes(), raw.size(), decoded);
    EXPECT_TRUE(std::equal(raw.begin(), raw.end(), decoded.bytes().begin()));
  }
}

TEST(DeltaCodec, IncompressibleFallsBackToRaw) {
  const std::vector<std::byte> raw = noise(32 * 1024, 0x5eed);
  for (const BlockCodec codec : {BlockCodec::kZeroRle, BlockCodec::kLz}) {
    support::ByteBuffer stored;
    const BlockCodec used = support::block_encode(codec, raw, stored);
    EXPECT_EQ(used, BlockCodec::kRaw) << support::to_string(codec);
    // The raw fallback is a plain copy: stored blocks never expand.
    EXPECT_EQ(stored.size(), raw.size());
    support::ByteBuffer decoded;
    support::block_decode(used, stored.bytes(), raw.size(), decoded);
    EXPECT_TRUE(std::equal(raw.begin(), raw.end(), decoded.bytes().begin()));
  }
}

TEST(DeltaCodec, RoundTripAtBoundarySizes) {
  // Sizes straddling the codecs' internal units: the LZ control-byte
  // group (8), its minimum match (4), the zero-RLE record threshold, and
  // block-boundary sizes around the default granularities.
  const std::size_t sizes[] = {1,    3,    7,     8,     9,     255,  256,
                               4095, 4096, 65535, 65536, 65537, 262144};
  for (const std::size_t n : sizes) {
    const std::vector<std::byte> compressible = solver_like(n, n);
    const std::vector<std::byte> incompressible = noise(n, n);
    for (const BlockCodec codec :
         {BlockCodec::kRaw, BlockCodec::kZeroRle, BlockCodec::kLz}) {
      EXPECT_EQ(round_trip(codec, compressible), compressible)
          << support::to_string(codec) << " size " << n;
      EXPECT_EQ(round_trip(codec, incompressible), incompressible)
          << support::to_string(codec) << " size " << n;
    }
  }
}

TEST(DeltaCodec, CrossCodecEquivalence) {
  // Whatever the wire bytes look like, every codec must decode to the
  // same raw block.
  const std::vector<std::byte> raw = solver_like(48 * 1024, 0xabcd);
  const std::vector<std::byte> via_raw = round_trip(BlockCodec::kRaw, raw);
  const std::vector<std::byte> via_rle = round_trip(BlockCodec::kZeroRle, raw);
  const std::vector<std::byte> via_lz = round_trip(BlockCodec::kLz, raw);
  EXPECT_EQ(via_raw, raw);
  EXPECT_EQ(via_rle, raw);
  EXPECT_EQ(via_lz, raw);
}

TEST(DeltaCodec, SolverLikeBlocksShrink) {
  const std::vector<std::byte> raw = solver_like(64 * 1024, 0x1234);
  for (const BlockCodec codec : {BlockCodec::kZeroRle, BlockCodec::kLz}) {
    support::ByteBuffer stored;
    const BlockCodec used = support::block_encode(codec, raw, stored);
    EXPECT_EQ(used, codec) << support::to_string(codec);
    EXPECT_LT(stored.size(), raw.size()) << support::to_string(codec);
  }
}

TEST(DeltaCodec, TruncatedStoredBytesRejected) {
  const std::vector<std::byte> raw = solver_like(16 * 1024, 0x77);
  for (const BlockCodec codec : {BlockCodec::kZeroRle, BlockCodec::kLz}) {
    support::ByteBuffer stored;
    const BlockCodec used = support::block_encode(codec, raw, stored);
    ASSERT_EQ(used, codec);
    const auto bytes = stored.bytes();
    support::ByteBuffer decoded;
    EXPECT_THROW(support::block_decode(codec, bytes.subspan(0, bytes.size() / 2),
                                       raw.size(), decoded),
                 support::CorruptCheckpoint)
        << support::to_string(codec);
  }
}

TEST(DeltaCodec, NameRoundTrip) {
  for (const BlockCodec codec :
       {BlockCodec::kRaw, BlockCodec::kZeroRle, BlockCodec::kLz}) {
    const auto parsed = support::block_codec_from_name(support::to_string(codec));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, codec);
  }
  EXPECT_FALSE(support::block_codec_from_name("gzip").has_value());
}

TEST(DeltaTracking, MutationLogDegradesToMarkAll) {
  MutationLog log;
  EXPECT_TRUE(log.clean());
  const Slice s = cube(2);
  log.mark(s);
  EXPECT_FALSE(log.clean());
  EXPECT_FALSE(log.all);
  EXPECT_TRUE(log.intersects(cube(8)));
  for (std::size_t i = 0; i < MutationLog::kMaxSlices + 1; ++i) {
    log.mark(s);
  }
  EXPECT_TRUE(log.all) << "the slice list must overflow into mark-all";
  log.clear();
  EXPECT_TRUE(log.clean());
}

TEST(DeltaTracking, WritePathsMarkAndConstPathsDoNot) {
  LocalArray local(cube(4), sizeof(double));
  MutationLog log;
  local.attach_mutation_log(&log);

  // Const reads leave the log clean.
  (void)static_cast<const LocalArray&>(local).as_f64();
  (void)static_cast<const LocalArray&>(local).bytes();
  const std::array<Index, 3> p{1, 2, 3};
  (void)local.get_f64(p);
  EXPECT_TRUE(log.clean());

  // set_f64 marks the point.
  local.set_f64(p, 7.0);
  EXPECT_FALSE(log.clean());
  EXPECT_FALSE(log.all);
  log.clear();

  // insert marks its target slice.
  const Slice slab =
      Slice::box(std::array<Index, 3>{0, 0, 0}, std::array<Index, 3>{3, 3, 0});
  std::vector<std::byte> buf(
      static_cast<std::size_t>(slab.element_count()) * sizeof(double));
  local.insert(slab, buf);
  EXPECT_FALSE(log.clean());
  EXPECT_TRUE(log.intersects(slab));
  log.clear();

  // Raw-span access is conservative: everything goes dirty.
  (void)local.as_f64();
  EXPECT_TRUE(log.all);
}

TEST(DeltaTracking, CollectDirtyBlocksIsPrecise) {
  constexpr int kP = 2;
  DistArray array("u", cube(kN), sizeof(double), kP);
  array.enable_dirty_tracking();
  array.install_distribution(
      DistSpec::block_auto(cube(kN), kP, std::vector<Index>(3, 0)));

  // 8^3 doubles in 512-byte blocks -> 8 blocks of 64 elements each.
  const StreamPlan plan = make_stream_plan(cube(kN), sizeof(double), 1, 512);
  ASSERT_EQ(plan.chunk_count(), 8u);

  // Fresh logs start all-dirty (everything must land in the first
  // generation).
  EXPECT_EQ(collect_dirty_blocks(array, plan.chunks).size(), 8u);

  array.clear_mutation_logs();
  EXPECT_TRUE(collect_dirty_blocks(array, plan.chunks).empty());

  // One point dirtied -> exactly the covering block comes back.
  const std::array<Index, 3> p{0, 0, 0};
  array.local(0).set_f64(p, 1.0);
  const std::vector<std::uint64_t> dirty =
      collect_dirty_blocks(array, plan.chunks);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0u);

  array.mark_all_dirty();
  EXPECT_EQ(collect_dirty_blocks(array, plan.chunks).size(), 8u);
}

/// One-array app under delta mode: checkpoints at every even iteration
/// under per-generation prefixes "<stem>.g<k>"; mutates one plane of the
/// array each iteration through the precise write path.
struct DeltaApp {
  static void run(DrmsProgram& program, TaskContext& ctx, int iterations,
                  const std::string& stem) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();

    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    DistArray& cold = drms.create_array("cold", lo, hi);
    const DistSpec spec = DistSpec::block_auto(
        cube(kN), ctx.size(), std::vector<Index>(3, 0));
    drms.distribute(u, spec);
    drms.distribute(cold, spec);

    if (!drms.restarted()) {
      const Slice& mine = spec.assigned(ctx.rank());
      mine.for_each_column_major([&](std::span<const Index> p) {
        u.local(ctx.rank()).set_f64(p, tag_of(p));
        cold.local(ctx.rank()).set_f64(p, 3.0 * tag_of(p));
      });
      ctx.barrier();
    }

    while (it < iterations) {
      if (it > 0 && it % 2 == 0) {
        (void)drms.reconfig_checkpoint(stem + ".g" + std::to_string(it));
      }
      // Touch only the global z == 0 plane — a task-count-independent
      // mutation (each task scales whatever part of the plane it owns),
      // recorded precisely by the set_f64 hook.
      const Slice& mine = u.distribution().assigned(ctx.rank());
      mine.for_each_column_major([&](std::span<const Index> p) {
        if (p[2] == 0) {
          u.local(ctx.rank())
              .set_f64(p, u.local(ctx.rank()).get_f64(p) * 1.01);
        }
      });
      ctx.barrier();
      ++it;
    }
  }
};

double digest(DrmsProgram& program, TaskContext& ctx,
              const std::string& name) {
  double sum = 0.0;
  if (ctx.rank() == 0) {
    DrmsContext view(program, ctx);
    DistArray& a = view.array(name);
    cube(kN).for_each_column_major(
        [&](std::span<const Index> p) { sum += a.get_f64(p); });
  }
  ctx.barrier();
  return sum;
}

DrmsEnv delta_env(Volume& volume, int full_every_k,
                  const std::string& restart = "") {
  DrmsEnv env;
  env.storage = &volume.backend();
  env.delta = true;
  env.delta_full_every_k = full_every_k;
  env.delta_block_bytes = 512;  // 8 stream blocks over the 8^3 array
  env.restart_prefix = restart;
  return env;
}

TEST(DeltaChain, GenerationsAlternatePerPolicy) {
  Volume volume(16);
  DrmsProgram program("dc", delta_env(volume, 2), tiny_segment(), 4);
  TaskGroup group(placement_of(4));
  const auto result = group.run([&](TaskContext& ctx) {
    DeltaApp::run(program, ctx, 9, "dc");  // checkpoints at it=2,4,6,8
  });
  ASSERT_TRUE(result.completed);

  // full_every_k=2: full, delta-on-g2, full, delta-on-g6.
  EXPECT_EQ(read_checkpoint_meta(volume, "dc.g2").kind, GenerationKind::kFull);
  const CheckpointMeta g4 = read_checkpoint_meta(volume, "dc.g4");
  EXPECT_EQ(g4.kind, GenerationKind::kDelta);
  EXPECT_EQ(g4.base_prefix, "dc.g2");
  EXPECT_EQ(g4.chain_depth, 1);
  EXPECT_EQ(read_checkpoint_meta(volume, "dc.g6").kind, GenerationKind::kFull);
  const CheckpointMeta g8 = read_checkpoint_meta(volume, "dc.g8");
  EXPECT_EQ(g8.kind, GenerationKind::kDelta);
  EXPECT_EQ(g8.base_prefix, "dc.g6");

  // The delta's array files exist in the delta layout; the cold array
  // (never written after the base) stores zero blocks but the file is
  // still published so the chain walk sees a complete state.
  EXPECT_TRUE(volume.exists(delta_array_file_name("dc.g8", "u")));
  const ArrayMeta& cold = g8.array("cold");
  EXPECT_EQ(cold.dirty_blocks, 0u);
  EXPECT_GT(g8.array("u").dirty_blocks, 0u);

  const DeltaChainState state = program.delta_chain_state();
  EXPECT_EQ(state.last_kind, GenerationKind::kDelta);
  EXPECT_GT(state.last_stored_bytes, 0u);
  EXPECT_EQ(state.chain.size(), 2u);
  EXPECT_EQ(state.chain.back(), "dc.g8");
}

TEST(DeltaChain, RestartFromChainTipIsExactAcrossTaskCounts) {
  // Reference: same app, plain full dumps, run to completion.
  const auto run_app = [&](Volume& volume, int tasks, bool delta,
                           const std::string& restart) {
    DrmsEnv env = delta_env(volume, 4, restart);
    env.delta = delta;
    DrmsProgram program("dc", env, tiny_segment(), tasks);
    TaskGroup group(placement_of(tasks));
    double sum = 0.0;
    const auto result = group.run([&](TaskContext& ctx) {
      DeltaApp::run(program, ctx, 9, "dc");
      const double d = digest(program, ctx, "u");
      if (ctx.rank() == 0) {
        sum = d;
      }
    });
    EXPECT_TRUE(result.completed);
    return sum;
  };

  Volume ref_volume(16);
  const double reference = run_app(ref_volume, 4, false, "");

  Volume volume(16);
  (void)run_app(volume, 4, true, "");
  // full_every_k=4: g2 full, then g4/g6/g8 deltas — the tip is a depth-3
  // delta whose restore must replay the base plus three links, on a
  // DIFFERENT task count (chain replay is distribution-independent).
  const auto tip = latest_checkpoint(volume, "dc");
  ASSERT_TRUE(tip.has_value());
  ASSERT_EQ(tip->prefix, "dc.g8");
  ASSERT_EQ(tip->meta.chain_depth, 3);
  const double resumed = run_app(volume, 6, true, tip->prefix);
  EXPECT_EQ(resumed, reference);
}

TEST(DeltaChain, DeepVerifyWalksChainAndCatchesCorruption) {
  Volume volume(16);
  DrmsProgram program("dc", delta_env(volume, 4), tiny_segment(), 4);
  TaskGroup group(placement_of(4));
  const auto result = group.run([&](TaskContext& ctx) {
    DeltaApp::run(program, ctx, 9, "dc");  // g2 full; g4,g6,g8 deltas
  });
  ASSERT_TRUE(result.completed);

  const auto tip = latest_checkpoint(volume, "dc");
  ASSERT_TRUE(tip.has_value());
  EXPECT_EQ(tip->prefix, "dc.g8");
  EXPECT_TRUE(verify_checkpoint(volume, *tip, /*deep=*/true).ok);

  // Corrupt one payload byte of an ANCESTOR delta (g4's u file): only the
  // whole-chain walk can see it.
  {
    auto file = volume.backend().open(delta_array_file_name("dc.g4", "u"));
    std::byte flip[1];
    file.read_at_into(wire::kDeltaHeaderBytes, flip);
    flip[0] ^= std::byte{0xff};
    file.write_at(wire::kDeltaHeaderBytes, flip);
  }
  const VerifyResult bad = verify_checkpoint(volume, *tip, /*deep=*/true);
  EXPECT_FALSE(bad.ok);
  ASSERT_FALSE(bad.problems.empty());
}

TEST(DeltaChain, GcKeepsBaseAcrossChainBoundary) {
  Volume volume(16);
  DrmsProgram program("dc", delta_env(volume, 2), tiny_segment(), 4);
  TaskGroup group(placement_of(4));
  const auto result = group.run([&](TaskContext& ctx) {
    DeltaApp::run(program, ctx, 9, "dc");
  });
  ASSERT_TRUE(result.completed);
  // States: g2 full, g4 delta(g2), g6 full, g8 delta(g6).

  // keep_last_k=1 spans the g8 -> g6 chain boundary: g6 must survive as
  // g8's base even though retention alone would retire it.
  const int removed = gc_superseded_states(volume.backend(), "dc", "", 1);
  EXPECT_EQ(removed, 2);
  EXPECT_TRUE(checkpoint_exists(volume, "dc.g8"));
  EXPECT_TRUE(checkpoint_exists(volume, "dc.g6"));
  EXPECT_FALSE(commit_manifest_exists(volume, "dc.g4"));
  EXPECT_FALSE(commit_manifest_exists(volume, "dc.g2"));

  // The surviving chain still restores: the tip stays a valid candidate.
  const VerifyResult v = verify_checkpoint(
      volume, *latest_checkpoint(volume.backend(), "dc"), /*deep=*/true);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
}

TEST(DeltaChain, BrokenBaseMakesDeltaTorn) {
  Volume volume(16);
  DrmsProgram program("dc", delta_env(volume, 2), tiny_segment(), 4);
  TaskGroup group(placement_of(4));
  const auto result = group.run([&](TaskContext& ctx) {
    DeltaApp::run(program, ctx, 5, "dc");  // g2 full, g4 delta(g2)
  });
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(commit_status(volume, "dc.g4", false).committed);

  // Decommit the base: every delta that depends on it becomes torn.
  ASSERT_TRUE(decommit_checkpoint(volume.backend(), "dc.g2"));

  const CommitCheck check = commit_status(volume, "dc.g4", false);
  EXPECT_FALSE(check.committed);
  ASSERT_FALSE(check.problems.empty());

  // Not a restart candidate anymore...
  for (const auto& r : restart_candidates(volume, "dc")) {
    EXPECT_NE(r.prefix, "dc.g4");
  }
  // ...and fsck surfaces it as a torn state with reclaimable files.
  bool flagged = false;
  for (const auto& s : fsck_scan(volume, "dc.g4")) {
    if (s.prefix == "dc.g4") {
      flagged = true;
      EXPECT_FALSE(s.committed);
      EXPECT_FALSE(s.problems.empty());
    }
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
