// Tests for array section streaming (§3.2): the distribution-independent
// stream representation, serial/parallel equivalence, the no-seek
// property of serial streaming, and input streaming with scatter.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "core/streamer.hpp"
#include "support/crc32.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::count_mapped_mismatches;
using drms::test::cube;
using drms::test::fill_assigned_tagged;
using drms::test::placement_of;
using drms::test::tag_of;

/// Expected stream: tags of every element of `x` in column-major order.
std::vector<double> expected_stream(const Slice& x) {
  std::vector<double> out;
  x.for_each_column_major(
      [&](std::span<const Index> p) { out.push_back(tag_of(p)); });
  return out;
}

std::vector<double> file_as_doubles(const Volume& volume,
                                    const std::string& name) {
  const auto handle = volume.open(name);
  const auto bytes = handle.read_at(0, handle.size());
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Run a group that distributes a tagged array and streams section x out.
void stream_out_test(int tasks, int io_tasks, const Slice& box,
                     const Slice& x, Index shadow_w,
                     std::uint64_t chunk_bytes, Volume& volume) {
  TaskGroup group(placement_of(tasks));
  DistArray array("u", box, sizeof(double), tasks);
  volume.create("out");
  std::vector<Index> shadow(static_cast<std::size_t>(box.rank()), shadow_w);

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(box, tasks, shadow));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    const ArrayStreamer streamer(nullptr, {}, chunk_bytes);
    const std::uint64_t written = streamer.write_section(
        ctx, array, x, volume.open("out"), 0, io_tasks);
    EXPECT_EQ(written, static_cast<std::uint64_t>(x.element_count()) *
                           sizeof(double));
  });
  ASSERT_TRUE(result.completed);
}

TEST(StreamPlan, OffsetsAreDenseAndOrdered) {
  const StreamPlan plan =
      make_stream_plan(cube(16), sizeof(double), 4, 1024);
  ASSERT_GE(plan.chunk_count(), 4u);
  std::uint64_t expected_offset = 0;
  for (std::size_t i = 0; i < plan.chunk_count(); ++i) {
    EXPECT_EQ(plan.offsets[i], expected_offset)
        << "serial streaming must be append-only (no seek)";
    expected_offset += static_cast<std::uint64_t>(
                           plan.chunks[i].element_count()) *
                       sizeof(double);
  }
  EXPECT_EQ(plan.total_bytes, expected_offset);
  EXPECT_EQ(plan.total_bytes, 16ull * 16 * 16 * sizeof(double));
}

TEST(StreamPlan, ChunksRespectTargetSize) {
  const StreamPlan plan =
      make_stream_plan(cube(16), sizeof(double), 1, 1000);
  for (const auto& chunk : plan.chunks) {
    EXPECT_LE(chunk.element_count() * static_cast<Index>(sizeof(double)),
              1000);
  }
}

TEST(StreamPlan, AtLeastIoTasksChunks) {
  // Even a small section yields >= io_tasks chunks when splittable.
  const StreamPlan plan =
      make_stream_plan(cube(4), sizeof(double), 8, 1 << 20);
  EXPECT_GE(plan.chunk_count(), 8u);
}

TEST(Streamer, FullArrayStreamIsColumnMajor) {
  Volume volume(16);
  const Slice box = cube(8);
  stream_out_test(4, 4, box, box, 0, 512, volume);
  EXPECT_EQ(file_as_doubles(volume, "out"), expected_stream(box));
}

TEST(Streamer, StreamIsDistributionIndependent) {
  // Same section, three different source distributions -> identical bytes.
  const Slice box = cube(8);
  std::vector<std::vector<double>> streams;
  for (const int tasks : {1, 3, 8}) {
    Volume volume(16);
    stream_out_test(tasks, tasks, box, box, 1, 700, volume);
    streams.push_back(file_as_doubles(volume, "out"));
  }
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  EXPECT_EQ(streams[0], expected_stream(box));
}

TEST(Streamer, SerialAndParallelProduceIdenticalFiles) {
  const Slice box = cube(8);
  Volume serial_volume(16);
  stream_out_test(8, 1, box, box, 0, 600, serial_volume);
  Volume parallel_volume(16);
  stream_out_test(8, 8, box, box, 0, 600, parallel_volume);
  EXPECT_EQ(file_as_doubles(serial_volume, "out"),
            file_as_doubles(parallel_volume, "out"));
}

TEST(Streamer, SubSectionStreaming) {
  // Stream a proper sub-section, including strided axes — the
  // distribution-independent representation covers irregular sections.
  const Slice box = cube(8);
  const Slice x{{Range::strided(1, 7, 2), Range::contiguous(2, 5),
                 Range::of_indices({0, 3, 7})}};
  Volume volume(16);
  stream_out_test(4, 4, box, x, 1, 256, volume);
  EXPECT_EQ(file_as_doubles(volume, "out"), expected_stream(x));
}

TEST(Streamer, ReadScattersIntoAllMappedCopies) {
  const Slice box = cube(8);
  // First produce a canonical stream file.
  Volume volume(16);
  stream_out_test(2, 2, box, box, 0, 1024, volume);

  // Now read it into a 4-task array with shadows.
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  DistArray array("v", box, sizeof(double), kP);
  const std::array<Index, 3> shadow{1, 1, 1};
  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(DistSpec::block_auto(box, kP, shadow));
    }
    ctx.barrier();
    const ArrayStreamer streamer(nullptr, {}, 512);
    const std::uint64_t read = streamer.read_section(
        ctx, array, box, volume.open("out"), 0, kP);
    EXPECT_EQ(read, static_cast<std::uint64_t>(box.element_count()) *
                        sizeof(double));
    ctx.barrier();
    EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Streamer, WriteReadRoundTripAcrossTaskCounts) {
  // t1-task write, t2-task read — the reconfigurable-restart data path.
  const Slice box = cube(10);
  for (const auto& [t1, t2] : std::vector<std::pair<int, int>>{
           {5, 2}, {2, 7}, {1, 6}, {6, 1}}) {
    Volume volume(16);
    stream_out_test(t1, t1, box, box, 1, 800, volume);

    TaskGroup group(placement_of(t2));
    DistArray array("v", box, sizeof(double), t2);
    std::vector<Index> shadow(3, 1);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(DistSpec::block_auto(box, t2, shadow));
      }
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {}, 800);
      streamer.read_section(ctx, array, box, volume.open("out"), 0, t2);
      ctx.barrier();
      EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0)
          << "t1=" << t1 << " t2=" << t2;
    });
    EXPECT_TRUE(result.completed);
  }
}

TEST(Streamer, StreamCrcEqualsFileCrcAndIsChunkingInvariant) {
  const Slice box = cube(8);
  std::uint32_t crc_by_width[3] = {0, 0, 0};
  int idx = 0;
  for (const int io_tasks : {1, 3, 8}) {
    Volume volume(16);
    volume.create("out");
    TaskGroup group(placement_of(8));
    DistArray array("u", box, sizeof(double), 8);
    std::uint32_t crc = 0;
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(
            DistSpec::block_auto(box, 8, std::vector<Index>(3, 0)));
      }
      ctx.barrier();
      fill_assigned_tagged(array, ctx.rank());
      ctx.barrier();
      const ArrayStreamer streamer(nullptr, {}, 600);
      std::uint32_t my_crc = 0;
      streamer.write_section(ctx, array, box, volume.open("out"), 0,
                             io_tasks, &my_crc);
      if (ctx.rank() == 0) {
        crc = my_crc;
      }
    });
    ASSERT_TRUE(result.completed);
    // The combined chunk CRC is exactly the CRC of the file bytes.
    const auto handle = volume.open("out");
    EXPECT_EQ(crc,
              drms::support::crc32c(handle.read_at(0, handle.size())));
    crc_by_width[idx++] = crc;
  }
  // ...and independent of the I/O width used to produce it.
  EXPECT_EQ(crc_by_width[0], crc_by_width[1]);
  EXPECT_EQ(crc_by_width[0], crc_by_width[2]);
}

TEST(Streamer, ReadCrcDetectsCorruption) {
  const Slice box = cube(8);
  Volume volume(16);
  stream_out_test(4, 4, box, box, 0, 600, volume);
  // Flip one byte mid-file.
  auto f = volume.open("out");
  auto b = f.read_at(777, 1);
  b[0] ^= std::byte{0x40};
  f.write_at(777, b);

  TaskGroup group(placement_of(4));
  DistArray array("v", box, sizeof(double), 4);
  std::uint32_t write_time_crc = 0;
  {
    // Reference CRC of the clean stream (recompute from tags).
    Volume clean(16);
    stream_out_test(4, 4, box, box, 0, 600, clean);
    const auto h = clean.open("out");
    write_time_crc =
        drms::support::crc32c(h.read_at(0, h.size()));
  }
  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(box, 4, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    const ArrayStreamer streamer(nullptr, {}, 600);
    std::uint32_t read_crc = 0;
    streamer.read_section(ctx, array, box, volume.open("out"), 0, 4,
                          &read_crc);
    EXPECT_NE(read_crc, write_time_crc)
        << "corruption must change the read-side CRC";
  });
  EXPECT_TRUE(result.completed);
}

TEST(Streamer, ChargesSimulatedTimeWhenCostModelPresent) {
  const Slice box = cube(8);
  Volume volume(16);
  volume.create("out");
  constexpr int kP = 4;
  TaskGroup group(placement_of(kP));
  DistArray array("u", box, sizeof(double), kP);
  const drms::sim::CostModel cost = drms::sim::CostModel::paper_sp16();
  drms::sim::LoadContext load;
  load.busy_server_fraction = 0.25;
  load.per_task_resident_bytes = 1 << 20;
  load.server_count = 16;

  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<Index> shadow(3, 0);
      array.install_distribution(DistSpec::block_auto(box, kP, shadow));
    }
    ctx.barrier();
    const drms::store::PiofsBackend timed(volume.piofs(), &cost);
    const ArrayStreamer streamer(&timed, load, 4096);
    streamer.write_section(ctx, array, box, volume.open("out"), 0, kP);
    EXPECT_GT(ctx.sim_time(), 0.0);
  });
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.sim_seconds, 0.0);
}

}  // namespace
