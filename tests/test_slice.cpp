// Tests for Slices and the stream-order partitioner (Fig. 5a): rank/size,
// intersection, column-major enumeration, stream splitting, and the
// partition invariants the parallel streaming engine depends on.
#include <gtest/gtest.h>

#include <array>

#include "core/slice.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using namespace drms::core;
using drms::support::ContractViolation;

Slice box2(Index r0, Index r1, Index c0, Index c1) {
  return Slice({Range::contiguous(r0, r1), Range::contiguous(c0, c1)});
}

TEST(Slice, BasicProperties) {
  const Slice s = box2(0, 3, 10, 14);
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.element_count(), 4 * 5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.to_string(), "(0:3, 10:14)");
}

TEST(Slice, EmptyOfRank) {
  const Slice s = Slice::empty_of_rank(3);
  EXPECT_EQ(s.rank(), 3);
  EXPECT_TRUE(s.empty());
}

TEST(Slice, BoxFactory) {
  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{63, 63, 63};
  const Slice s = Slice::box(lo, hi);
  EXPECT_EQ(s.element_count(), 64 * 64 * 64);
}

TEST(Slice, PaperSliceExample) {
  // s = ((8,9,10,12), (16,18,19,20,22)) from §3.1: |s| = 2, 20 elements.
  const Slice s{{Range::of_indices({8, 9, 10, 12}),
                 Range::of_indices({16, 18, 19, 20, 22})}};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.element_count(), 20);
}

TEST(Slice, IntersectionPerAxis) {
  const Slice a = box2(0, 10, 0, 10);
  const Slice b = box2(5, 20, 8, 9);
  EXPECT_EQ(a * b, box2(5, 10, 8, 9));
  EXPECT_TRUE((a * box2(11, 12, 0, 10)).empty());
}

TEST(Slice, IntersectionRankMismatchThrows) {
  const Slice a = box2(0, 1, 0, 1);
  const Slice b{{Range::contiguous(0, 1)}};
  EXPECT_THROW((void)a.intersect(b), ContractViolation);
}

TEST(Slice, ContainsAndCovers) {
  const Slice s = box2(0, 4, 0, 4);
  const std::array<Index, 2> inside{2, 3};
  const std::array<Index, 2> outside{2, 5};
  EXPECT_TRUE(s.contains(inside));
  EXPECT_FALSE(s.contains(outside));
  EXPECT_TRUE(s.covers(box2(1, 2, 3, 4)));
  EXPECT_FALSE(s.covers(box2(1, 2, 3, 5)));
  EXPECT_TRUE(s.covers(Slice::empty_of_rank(2)));
}

TEST(Slice, ColumnMajorEnumerationOrder) {
  const Slice s = box2(0, 1, 10, 11);
  std::vector<std::pair<Index, Index>> visited;
  s.for_each_column_major([&](std::span<const Index> p) {
    visited.emplace_back(p[0], p[1]);
  });
  // Axis 0 varies fastest (FORTRAN order).
  const std::vector<std::pair<Index, Index>> expected{
      {0, 10}, {1, 10}, {0, 11}, {1, 11}};
  EXPECT_EQ(visited, expected);
}

TEST(Slice, SplitStreamHalfSplitsSlowestAxis) {
  const Slice s = box2(0, 3, 0, 3);
  const auto [lo, hi] = s.split_stream_half();
  // The slowest axis (axis 1) is halved.
  EXPECT_EQ(lo, box2(0, 3, 0, 1));
  EXPECT_EQ(hi, box2(0, 3, 2, 3));
}

TEST(Slice, SplitStreamHalfFallsThroughSingletonAxes) {
  // Slowest axis has one element -> the split happens on axis 0.
  const Slice s{{Range::contiguous(0, 5), Range::single(7)}};
  const auto [lo, hi] = s.split_stream_half();
  EXPECT_EQ(lo, (Slice{{Range::contiguous(0, 2), Range::single(7)}}));
  EXPECT_EQ(hi, (Slice{{Range::contiguous(3, 5), Range::single(7)}}));
}

TEST(Slice, SplitSingleElementThrows) {
  const Slice s{{Range::single(0), Range::single(0)}};
  EXPECT_THROW((void)s.split_stream_half(), ContractViolation);
}

/// Enumerate the full element stream of a slice (column-major).
std::vector<std::vector<Index>> stream_of(const Slice& s) {
  std::vector<std::vector<Index>> out;
  s.for_each_column_major([&](std::span<const Index> p) {
    out.emplace_back(p.begin(), p.end());
  });
  return out;
}

TEST(Partition, ConcatenationPreservesStreamOrder) {
  const Slice s = box2(0, 7, 0, 7);
  const auto parts = partition_for_stream(s, 4, 10);
  EXPECT_GE(parts.size(), 4u);
  std::vector<std::vector<Index>> cat;
  for (const auto& part : parts) {
    EXPECT_LE(part.element_count(), 10);
    EXPECT_FALSE(part.empty());
    const auto sub = stream_of(part);
    cat.insert(cat.end(), sub.begin(), sub.end());
  }
  EXPECT_EQ(cat, stream_of(s));
}

TEST(Partition, RespectsMinParts) {
  const Slice s = box2(0, 63, 0, 63);
  for (const int min_parts : {1, 2, 3, 8, 16}) {
    const auto parts = partition_for_stream(s, min_parts, 1 << 20);
    EXPECT_GE(static_cast<int>(parts.size()), min_parts)
        << "min_parts=" << min_parts;
  }
}

TEST(Partition, UnsplittableSliceReturnedWhole) {
  const Slice s{{Range::single(5)}};
  const auto parts = partition_for_stream(s, 16, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], s);
}

TEST(Partition, EmptySliceYieldsNoParts) {
  EXPECT_TRUE(partition_for_stream(Slice::empty_of_rank(2), 4, 10).empty());
}

TEST(Partition, SingleChunkWhenSmall) {
  const Slice s = box2(0, 1, 0, 1);
  const auto parts = partition_for_stream(s, 1, 100);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], s);
}

/// Parameterized sweep over (rank, min_parts, max_elements): partition
/// invariants hold for random slices, including index-list axes.
struct PartitionCase {
  int seed;
  int min_parts;
  Index max_elements;
};

class PartitionProperty : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionProperty, Invariants) {
  const auto param = GetParam();
  drms::support::Rng rng(static_cast<std::uint64_t>(param.seed));
  for (int iter = 0; iter < 10; ++iter) {
    const int rank = static_cast<int>(rng.uniform_int(1, 3));
    std::vector<Range> ranges;
    for (int k = 0; k < rank; ++k) {
      if (rng.uniform_int(0, 3) == 0) {
        std::vector<Index> v;
        Index x = 0;
        const Index n = rng.uniform_int(1, 8);
        for (Index i = 0; i < n; ++i) {
          x += rng.uniform_int(1, 3);
          v.push_back(x);
        }
        ranges.push_back(Range::of_indices(std::move(v)));
      } else {
        ranges.push_back(
            Range::contiguous(0, rng.uniform_int(0, 12)));
      }
    }
    const Slice s{std::move(ranges)};
    const auto parts =
        partition_for_stream(s, param.min_parts, param.max_elements);

    Index total = 0;
    std::vector<std::vector<Index>> cat;
    for (const auto& part : parts) {
      EXPECT_FALSE(part.empty());
      total += part.element_count();
      // A part is only allowed to exceed max_elements if it is a single
      // element (unsplittable).
      if (part.element_count() > param.max_elements) {
        EXPECT_EQ(part.element_count(), 1);
      }
      const auto sub = stream_of(part);
      cat.insert(cat.end(), sub.begin(), sub.end());
    }
    EXPECT_EQ(total, s.element_count());
    EXPECT_EQ(cat, stream_of(s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Values(PartitionCase{1, 1, 4}, PartitionCase{2, 2, 4},
                      PartitionCase{3, 4, 7}, PartitionCase{4, 8, 3},
                      PartitionCase{5, 16, 1}, PartitionCase{6, 3, 1000}));

}  // namespace
