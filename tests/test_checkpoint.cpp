// Integration tests for the checkpoint engines: DRMS write/restore round
// trips (including reconfigured restarts t1 -> t2), the SPMD baseline,
// state-size accounting, and corruption detection.
#include <gtest/gtest.h>

#include <array>

#include "core/drms_checkpoint.hpp"
#include "core/redistribute.hpp"
#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "core/spmd_checkpoint.hpp"
#include "rt/task_group.hpp"
#include "svc/io_scheduler.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::count_mapped_mismatches;
using drms::test::cube;
using drms::test::fill_assigned_tagged;
using drms::test::placement_of;

AppSegmentModel small_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 64 * 1024;
  m.private_bytes = 16 * 1024;
  m.system_bytes = 128 * 1024;
  m.text_bytes = 8 * 1024;
  return m;
}

struct TestState {
  std::int64_t iteration = 0;
  double residual = 0.0;
  std::vector<double> history;

  void register_in(ReplicatedStore& store) {
    store.register_i64("iteration", &iteration);
    store.register_f64("residual", &residual);
    store.register_f64_vector("history", &history);
  }
};

/// Write a DRMS checkpoint of a tagged n^3 array from t1 tasks. A
/// non-null `io` attaches a checkpoint-service session: the engine's
/// writes go through the scheduler's queues instead of running inline.
void write_drms_checkpoint(Volume& volume, int t1, Index n,
                           const std::string& prefix,
                           drms::svc::IoScheduler* io = nullptr,
                           const drms::svc::JobToken* job = nullptr) {
  TaskGroup group(placement_of(t1));
  DistArray array("u", cube(n), sizeof(double), t1);
  const auto result = group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<Index> shadow(3, 1);
      array.install_distribution(
          DistSpec::block_auto(cube(n), t1, shadow));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    TestState state;
    state.iteration = 42;
    state.residual = 1e-6;
    state.history = {3.0, 2.0, 1.0};
    ReplicatedStore store;
    state.register_in(store);

    DrmsCheckpoint engine(volume, {});
    if (io != nullptr) {
      engine.attach_io_session(io, job);
    }
    const std::array<DistArray*, 1> arrays{&array};
    const auto timing = engine.write(ctx, prefix, "testapp", 7, store,
                                     arrays, small_segment());
    (void)timing;
  });
  ASSERT_TRUE(result.completed);
}

TEST(DrmsCheckpoint, MetaDescribesTheState) {
  Volume volume(16);
  write_drms_checkpoint(volume, 4, 8, "ck");
  ASSERT_TRUE(checkpoint_exists(volume, "ck"));
  const CheckpointMeta meta = read_checkpoint_meta(volume, "ck");
  EXPECT_EQ(meta.app_name, "testapp");
  EXPECT_EQ(meta.task_count, 4);
  EXPECT_EQ(meta.sop, 7);
  ASSERT_EQ(meta.arrays.size(), 1u);
  EXPECT_EQ(meta.arrays[0].name, "u");
  EXPECT_EQ(meta.arrays[0].stream_bytes, 8ull * 8 * 8 * sizeof(double));
  EXPECT_EQ(meta.arrays[0].box(), cube(8));
  EXPECT_EQ(meta.segment_bytes, small_segment().total());
}

TEST(DrmsCheckpoint, StateSizeIsSegmentPlusArrays) {
  Volume volume(16);
  write_drms_checkpoint(volume, 4, 8, "ck");
  EXPECT_EQ(drms_state_size(volume, "ck"),
            small_segment().total() + 8ull * 8 * 8 * sizeof(double));
}

TEST(DrmsCheckpoint, StateSizeIndependentOfTaskCount) {
  Volume v2(16);
  write_drms_checkpoint(v2, 2, 8, "ck");
  Volume v8(16);
  write_drms_checkpoint(v8, 8, 8, "ck");
  EXPECT_EQ(drms_state_size(v2, "ck"), drms_state_size(v8, "ck"));
}

/// Restore on t2 tasks and verify both replicated state and array values.
void restore_and_check(Volume& volume, int t2, Index n,
                       const std::string& prefix) {
  TaskGroup group(placement_of(t2));
  DistArray array("u", cube(n), sizeof(double), t2);
  const auto result = group.run([&](TaskContext& ctx) {
    TestState state;  // starts blank; must be refreshed from the segment
    ReplicatedStore store;
    state.register_in(store);

    DrmsCheckpoint engine(volume, {});
    RestartTiming timing;
    const CheckpointMeta meta = engine.restore_segment(
        ctx, prefix, store, small_segment(), timing);
    EXPECT_EQ(state.iteration, 42);
    EXPECT_DOUBLE_EQ(state.residual, 1e-6);
    EXPECT_EQ(state.history, (std::vector<double>{3.0, 2.0, 1.0}));

    // Specify a (new) distribution, then load.
    if (ctx.rank() == 0) {
      std::vector<Index> shadow(3, 1);
      array.install_distribution(
          DistSpec::block_auto(cube(n), t2, shadow));
    }
    ctx.barrier();
    engine.restore_array(ctx, prefix, meta, array, timing);
    EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
  });
  ASSERT_TRUE(result.completed);
}

TEST(DrmsCheckpoint, RestoreOnSameTaskCount) {
  Volume volume(16);
  write_drms_checkpoint(volume, 4, 8, "ck");
  restore_and_check(volume, 4, 8, "ck");
}

/// The paper's headline property: restart with t2 != t1.
class ReconfiguredRestart
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReconfiguredRestart, T1ToT2) {
  const auto [t1, t2] = GetParam();
  Volume volume(16);
  write_drms_checkpoint(volume, t1, 8, "ck");
  restore_and_check(volume, t2, 8, "ck");
}

INSTANTIATE_TEST_SUITE_P(
    TaskCountPairs, ReconfiguredRestart,
    ::testing::Values(std::make_pair(8, 4), std::make_pair(4, 8),
                      std::make_pair(1, 8), std::make_pair(8, 1),
                      std::make_pair(3, 5), std::make_pair(6, 6),
                      std::make_pair(5, 7)));

TEST(DrmsCheckpoint, MultiplePrefixesCoexist) {
  Volume volume(16);
  write_drms_checkpoint(volume, 4, 8, "ck.a");
  write_drms_checkpoint(volume, 2, 8, "ck.b");
  restore_and_check(volume, 3, 8, "ck.a");
  restore_and_check(volume, 5, 8, "ck.b");
}

TEST(DrmsCheckpoint, CorruptedSegmentIsDetected) {
  Volume volume(16);
  write_drms_checkpoint(volume, 2, 8, "ck");
  // Flip a byte inside the replicated payload.
  auto seg = volume.open(segment_file_name("ck"));
  auto byte = seg.read_at(40, 1);
  byte[0] ^= std::byte{0xff};
  seg.write_at(40, byte);

  TaskGroup group(placement_of(2));
  const auto result = group.run([&](TaskContext& ctx) {
    TestState state;
    ReplicatedStore store;
    state.register_in(store);
    DrmsCheckpoint engine(volume, {});
    RestartTiming timing;
    EXPECT_THROW((void)engine.restore_segment(ctx, "ck", store,
                                              small_segment(), timing),
                 drms::support::CorruptCheckpoint);
  });
  EXPECT_TRUE(result.completed);
}

TEST(DrmsCheckpoint, MissingPrefixReportsCleanly) {
  Volume volume(16);
  EXPECT_FALSE(checkpoint_exists(volume, "nope"));
  EXPECT_THROW((void)read_checkpoint_meta(volume, "nope"),
               drms::support::IoError);
}

TEST(DrmsCheckpoint, MismatchedArrayDeclarationThrows) {
  Volume volume(16);
  write_drms_checkpoint(volume, 2, 8, "ck");
  TaskGroup group(placement_of(2));
  DistArray wrong("u", cube(4), sizeof(double), 2);  // wrong shape
  const auto result = group.run([&](TaskContext& ctx) {
    TestState state;
    ReplicatedStore store;
    state.register_in(store);
    DrmsCheckpoint engine(volume, {});
    RestartTiming timing;
    const auto meta =
        engine.restore_segment(ctx, "ck", store, small_segment(), timing);
    if (ctx.rank() == 0) {
      wrong.install_distribution(
          DistSpec::block_auto(cube(4), 2, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      EXPECT_THROW(engine.restore_array(ctx, "ck", meta, wrong, timing),
                   drms::support::ContractViolation);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(DrmsCheckpoint, CorruptedArrayFileIsDetected) {
  Volume volume(16);
  write_drms_checkpoint(volume, 4, 8, "ck");
  // Flip a byte in the middle of the array stream.
  auto f = volume.open(array_file_name("ck", "u"));
  auto b = f.read_at(1000, 1);
  b[0] ^= std::byte{0x01};
  f.write_at(1000, b);

  TaskGroup group(placement_of(3));
  DistArray array("u", cube(8), sizeof(double), 3);
  const auto result = group.run([&](TaskContext& ctx) {
    TestState state;
    ReplicatedStore store;
    state.register_in(store);
    DrmsCheckpoint engine(volume, {});
    RestartTiming timing;
    const auto meta =
        engine.restore_segment(ctx, "ck", store, small_segment(), timing);
    if (ctx.rank() == 0) {
      std::vector<Index> shadow(3, 0);
      array.install_distribution(
          DistSpec::block_auto(cube(8), 3, shadow));
    }
    ctx.barrier();
    EXPECT_THROW(engine.restore_array(ctx, "ck", meta, array, timing),
                 drms::support::CorruptCheckpoint);
  });
  EXPECT_TRUE(result.completed);
}

TEST(DrmsCheckpoint, AlternatingPrefixesSurviveATornCheckpoint) {
  // The paper's multiple-concurrent-states feature is also the defence
  // against a crash DURING a checkpoint: applications alternate between
  // two prefixes, so a torn write can only damage the newer state and
  // the older one remains restartable.
  Volume volume(16);
  write_drms_checkpoint(volume, 4, 8, "even");
  write_drms_checkpoint(volume, 4, 8, "odd");

  // Simulate a crash while overwriting "even": half the array file gets
  // scribbled, the meta was never rewritten.
  auto f = volume.open(array_file_name("even", "u"));
  std::vector<std::byte> garbage(f.size() / 2, std::byte{0x5a});
  f.write_at(0, garbage);

  // Restoring "even" now fails loudly at the array-CRC check...
  {
    TaskGroup group(placement_of(4));
    DistArray array("u", cube(8), sizeof(double), 4);
    const auto result = group.run([&](TaskContext& ctx) {
      TestState state;
      ReplicatedStore store;
      state.register_in(store);
      DrmsCheckpoint engine(volume, {});
      RestartTiming timing;
      const auto meta = engine.restore_segment(ctx, "even", store,
                                               small_segment(), timing);
      if (ctx.rank() == 0) {
        array.install_distribution(DistSpec::block_auto(
            cube(8), 4, std::vector<Index>(3, 0)));
      }
      ctx.barrier();
      EXPECT_THROW(engine.restore_array(ctx, "even", meta, array, timing),
                   drms::support::CorruptCheckpoint);
    });
    EXPECT_TRUE(result.completed);
  }
  // ...while "odd" is intact and fully restartable.
  restore_and_check(volume, 6, 8, "odd");
}

// ---------------------------------------------------------------------------
// SPMD baseline
// ---------------------------------------------------------------------------

void spmd_round_trip(Volume& volume, int tasks, Index n,
                     drms::svc::IoScheduler* io = nullptr,
                     const drms::svc::JobToken* job = nullptr) {
  const std::string prefix = "sp";
  // Write.
  {
    TaskGroup group(placement_of(tasks));
    DistArray array("u", cube(n), sizeof(double), tasks);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(
            DistSpec::block_auto(cube(n), tasks, std::vector<Index>(3, 1)));
      }
      ctx.barrier();
      fill_assigned_tagged(array, ctx.rank());
      // Make the shadow copies consistent too (SPMD dumps raw locals).
      redistribute(ctx, array, array.distribution());

      TestState state;
      state.iteration = 7;
      ReplicatedStore store;
      state.register_in(store);
      SpmdCheckpoint engine(volume, {});
      if (io != nullptr) {
        engine.attach_io_session(io, job);
      }
      const std::array<DistArray*, 1> arrays{&array};
      engine.write(ctx, prefix, "testapp", 1, store, arrays,
                   small_segment());
    });
    ASSERT_TRUE(result.completed);
  }
  // Restore with the same task count.
  {
    TaskGroup group(placement_of(tasks));
    DistArray array("u", cube(n), sizeof(double), tasks);
    const auto result = group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(
            DistSpec::block_auto(cube(n), tasks, std::vector<Index>(3, 1)));
      }
      ctx.barrier();
      TestState state;
      ReplicatedStore store;
      state.register_in(store);
      SpmdCheckpoint engine(volume, {});
      const std::array<DistArray*, 1> arrays{&array};
      RestartTiming timing;
      engine.restore(ctx, prefix, store, arrays, small_segment(), timing);
      EXPECT_EQ(state.iteration, 7);
      EXPECT_EQ(count_mapped_mismatches(array, ctx.rank()), 0);
    });
    ASSERT_TRUE(result.completed);
  }
}

TEST(SpmdCheckpoint, RoundTripSameTaskCount) {
  Volume volume(16);
  spmd_round_trip(volume, 4, 8);
}

TEST(SpmdCheckpoint, OneFilePerTask) {
  Volume volume(16);
  spmd_round_trip(volume, 4, 8);
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(volume.exists(spmd_task_file_name("sp", r)));
  }
  EXPECT_EQ(spmd_state_size(volume, "sp"),
            4ull * small_segment().total());
}

TEST(SpmdCheckpoint, StateGrowsLinearlyWithTasks) {
  Volume v2(16);
  spmd_round_trip(v2, 2, 8);
  Volume v8(16);
  spmd_round_trip(v8, 8, 8);
  EXPECT_EQ(spmd_state_size(v8, "sp"), 4 * spmd_state_size(v2, "sp"));
}

// ---------------------------------------------------------------------------
// Checkpoint-service I/O sessions (drms::svc)
// ---------------------------------------------------------------------------

/// Every file of `expected` must exist in `actual` with identical bytes
/// (and vice versa): the queued write path may not perturb the format.
void expect_volumes_identical(Volume& expected, Volume& actual) {
  const auto names = expected.backend().list();
  EXPECT_EQ(names.size(), actual.backend().list().size());
  for (const auto& name : names) {
    ASSERT_TRUE(actual.exists(name)) << name;
    const auto size = expected.backend().file_size(name);
    ASSERT_EQ(actual.backend().file_size(name), size) << name;
    EXPECT_EQ(expected.open(name).read_at(0, size),
              actual.open(name).read_at(0, size))
        << name;
  }
}

TEST(DrmsCheckpoint, IoSessionWriteIsByteIdenticalAndRestorable) {
  Volume sync_vol(16);
  write_drms_checkpoint(sync_vol, 4, 8, "ck");

  Volume async_vol(16);
  drms::obs::Recorder recorder;
  drms::svc::IoScheduler::Options opts;
  opts.force_async = true;  // queue even as the only registered job
  opts.shard_count = 4;
  opts.recorder = &recorder;
  drms::svc::IoScheduler scheduler(opts);
  const drms::svc::JobToken job = scheduler.register_job("testapp");
  write_drms_checkpoint(async_vol, 4, 8, "ck", &scheduler, &job);

  // The async writes really went through the queues...
  EXPECT_GT(recorder.counter("svc.submit.foreground"), 0u);
  EXPECT_EQ(recorder.counter("svc.fail.foreground"), 0u);
  // ...and produced byte-for-byte the synchronous engine's state, still
  // restorable on a different task count (the reconfigurable contract).
  expect_volumes_identical(sync_vol, async_vol);
  restore_and_check(async_vol, 6, 8, "ck");
}

TEST(SpmdCheckpoint, IoSessionWriteIsByteIdenticalAndRestorable) {
  Volume sync_vol(16);
  spmd_round_trip(sync_vol, 4, 8);

  Volume async_vol(16);
  drms::obs::Recorder recorder;
  drms::svc::IoScheduler::Options opts;
  opts.force_async = true;
  opts.shard_count = 4;
  opts.recorder = &recorder;
  drms::svc::IoScheduler scheduler(opts);
  const drms::svc::JobToken job = scheduler.register_job("testapp");
  // spmd_round_trip restores after writing, so this both byte-checks the
  // queued per-task segment writes and proves the state restorable.
  spmd_round_trip(async_vol, 4, 8, &scheduler, &job);

  EXPECT_GT(recorder.counter("svc.submit.foreground"), 0u);
  EXPECT_EQ(recorder.counter("svc.fail.foreground"), 0u);
  expect_volumes_identical(sync_vol, async_vol);
}

TEST(SpmdCheckpoint, ReconfiguredRestartIsImpossible) {
  Volume volume(16);
  spmd_round_trip(volume, 4, 8);

  TaskGroup group(placement_of(6));
  DistArray array("u", cube(8), sizeof(double), 6);
  const auto result = group.run([&](TaskContext& ctx) {
    TestState state;
    ReplicatedStore store;
    state.register_in(store);
    SpmdCheckpoint engine(volume, {});
    const std::array<DistArray*, 1> arrays{&array};
    RestartTiming timing;
    EXPECT_THROW(engine.restore(ctx, "sp", store, arrays, small_segment(),
                                timing),
                 drms::support::Error);
  });
  EXPECT_TRUE(result.completed);
}

}  // namespace
