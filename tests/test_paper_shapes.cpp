// Regression lock on the paper's qualitative results (Tables 5-6): runs
// the class-A checkpoint/restart experiment once per cell through the
// calibrated cost model and asserts every comparative claim of §5. A
// cost-model change that silently breaks a headline shape fails here, in
// the test suite, rather than being noticed (or not) in a bench run.
#include <gtest/gtest.h>

#include <map>

#include "apps/app_spec.hpp"
#include "apps/solver.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "store/piofs_backend.hpp"
#include "support/error.hpp"

namespace {

using namespace drms;
using apps::AppSpec;
using core::CheckpointMode;

struct Cell {
  double checkpoint = 0;
  double restart = 0;
};

/// One deterministic (jitter-free would need sigma 0; keep jitter but a
/// fixed seed) class-A run per cell.
Cell measure(const AppSpec& spec, int tasks, CheckpointMode mode) {
  piofs::Volume volume(16);
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  store::PiofsBackend storage(volume, &cost);

  apps::SolverOptions options;
  options.spec = spec;
  options.n = apps::grid_size(apps::ProblemClass::kA);
  options.iterations = 2;
  options.checkpoint_every = 1;
  options.prefix = "shape";
  options.compute_field_crc = false;

  Cell cell;
  {
    core::DrmsEnv env;
    env.storage = &storage;
    env.cost = &cost;
    env.mode = mode;
    auto program = apps::make_program(options, env, tasks);
    rt::TaskGroup group(
        sim::Placement::one_per_node(sim::Machine::paper_sp16(), tasks),
        42);
    const auto r = group.run([&](rt::TaskContext& ctx) {
      (void)apps::run_solver(*program, ctx, options);
    });
    if (!r.completed) {
      throw support::Error("shape run failed: " + r.kill_reason);
    }
    cell.checkpoint = program->last_checkpoint_timing().total_seconds();
  }
  {
    core::DrmsEnv env;
    env.storage = &storage;
    env.cost = &cost;
    env.mode = mode;
    env.restart_prefix = "shape";
    apps::SolverOptions restart_options = options;
    restart_options.stop_at_iteration = 1;
    auto program = apps::make_program(restart_options, env, tasks);
    rt::TaskGroup group(
        sim::Placement::one_per_node(sim::Machine::paper_sp16(), tasks),
        43);
    const auto r = group.run([&](rt::TaskContext& ctx) {
      (void)apps::run_solver(*program, ctx, restart_options);
    });
    if (!r.completed) {
      throw support::Error("shape restart failed: " + r.kill_reason);
    }
    cell.restart = program->last_restart_timing().total_seconds();
  }
  return cell;
}

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    for (const auto& spec : AppSpec::all()) {
      for (const int tasks : {8, 16}) {
        cells()[{spec.name, tasks, CheckpointMode::kDrms}] =
            measure(spec, tasks, CheckpointMode::kDrms);
        cells()[{spec.name, tasks, CheckpointMode::kSpmd}] =
            measure(spec, tasks, CheckpointMode::kSpmd);
      }
    }
  }

  using Key = std::tuple<std::string, int, CheckpointMode>;
  static std::map<Key, Cell>& cells() {
    static std::map<Key, Cell> instance;
    return instance;
  }
  static const Cell& at(const std::string& app, int tasks,
                        CheckpointMode mode) {
    return cells().at({app, tasks, mode});
  }
};

TEST_F(PaperShapes, DrmsCheckpointAlwaysBeatsSpmd) {
  for (const auto& spec : AppSpec::all()) {
    for (const int tasks : {8, 16}) {
      EXPECT_LT(at(spec.name, tasks, CheckpointMode::kDrms).checkpoint,
                at(spec.name, tasks, CheckpointMode::kSpmd).checkpoint)
          << spec.name << " on " << tasks;
    }
  }
}

TEST_F(PaperShapes, DrmsAdvantageWidensWithThePartition) {
  for (const auto& spec : AppSpec::all()) {
    const double ratio8 =
        at(spec.name, 8, CheckpointMode::kSpmd).checkpoint /
        at(spec.name, 8, CheckpointMode::kDrms).checkpoint;
    const double ratio16 =
        at(spec.name, 16, CheckpointMode::kSpmd).checkpoint /
        at(spec.name, 16, CheckpointMode::kDrms).checkpoint;
    EXPECT_GT(ratio16, ratio8) << spec.name;
  }
}

TEST_F(PaperShapes, DrmsRestartSpeedsUpFrom8To16) {
  // The paper's scalability headline: more clients read faster.
  for (const auto& spec : AppSpec::all()) {
    EXPECT_LT(at(spec.name, 16, CheckpointMode::kDrms).restart,
              at(spec.name, 8, CheckpointMode::kDrms).restart)
        << spec.name;
  }
}

TEST_F(PaperShapes, DrmsCheckpointSlowsSlightlyFrom8To16) {
  // Co-location interference; "slightly" = less than 2x.
  for (const auto& spec : AppSpec::all()) {
    const double c8 = at(spec.name, 8, CheckpointMode::kDrms).checkpoint;
    const double c16 = at(spec.name, 16, CheckpointMode::kDrms).checkpoint;
    EXPECT_GT(c16, c8) << spec.name;
    EXPECT_LT(c16, 2.0 * c8) << spec.name;
  }
}

TEST_F(PaperShapes, SpmdRestartThresholdBehaviour) {
  // BT blows up ~5x going 8 -> 16 (buffer threshold crossed).
  const double bt8 = at("BT", 8, CheckpointMode::kSpmd).restart;
  const double bt16 = at("BT", 16, CheckpointMode::kSpmd).restart;
  EXPECT_GT(bt16 / bt8, 3.5);
  // LU is already past the threshold at 8 processors: much slower than
  // BT at the same partition despite comparable state.
  const double lu8 = at("LU", 8, CheckpointMode::kSpmd).restart;
  EXPECT_GT(lu8 / bt8, 2.5);
  // SP (smallest segments) degrades far more mildly than BT.
  const double sp8 = at("SP", 8, CheckpointMode::kSpmd).restart;
  const double sp16 = at("SP", 16, CheckpointMode::kSpmd).restart;
  EXPECT_LT(sp16 / sp8, bt16 / bt8);
}

TEST_F(PaperShapes, BelowThresholdSpmdRestartBeatsDrms) {
  // BT and SP at 8 processors: no separate array-read phase, and the
  // buffer holds — conventional restart wins there, as the paper notes.
  for (const char* app : {"BT", "SP"}) {
    EXPECT_LT(at(app, 8, CheckpointMode::kSpmd).restart,
              at(app, 8, CheckpointMode::kDrms).restart)
        << app;
  }
}

TEST_F(PaperShapes, SpmdCheckpointScalesWithStateNotTasks) {
  // Doubling tasks doubles SPMD state; with server degradation on top the
  // time grows MORE than 2x.
  for (const auto& spec : AppSpec::all()) {
    const double c8 = at(spec.name, 8, CheckpointMode::kSpmd).checkpoint;
    const double c16 = at(spec.name, 16, CheckpointMode::kSpmd).checkpoint;
    EXPECT_GT(c16 / c8, 2.0) << spec.name;
  }
}

}  // namespace
