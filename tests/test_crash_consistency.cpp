// Crash-consistency tests for the two-phase commit protocol: a crash
// injected at EVERY storage-operation index during a checkpoint must
// leave the previous committed state as the restart candidate, with the
// torn attempt flagged by the fsck scan. Also covers torn (half-applied)
// writes and transient-fault retry.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/solver.hpp"
#include "arch/cluster.hpp"
#include "recovery/failure_schedule.hpp"
#include "recovery/supervisor.hpp"

#include "core/checkpoint_catalog.hpp"
#include "core/drms_checkpoint.hpp"
#include "core/drms_context.hpp"
#include "core/spmd_checkpoint.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/recorder.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "store/tiered_backend.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using drms::store::FaultInjectionBackend;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::fill_assigned_tagged;
using drms::test::placement_of;

constexpr int kTasks = 2;
constexpr Index kN = 6;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 4 * 1024;
  m.system_bytes = 4 * 1024;
  return m;
}

enum class BackendKind { kMemory, kPiofs, kTiered };

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMemory: return "Memory";
    case BackendKind::kPiofs: return "Piofs";
    case BackendKind::kTiered: return "Tiered";
  }
  return "?";
}

/// A fresh storage stack with the fault decorator on top — the engines
/// only ever see `fault`.
struct Stack {
  std::unique_ptr<drms::piofs::Volume> volume;
  std::unique_ptr<drms::store::PiofsBackend> piofs;
  std::unique_ptr<drms::store::MemoryBackend> memory;
  std::unique_ptr<drms::store::TieredBackend> tiered;
  std::unique_ptr<FaultInjectionBackend> fault;
};

Stack make_stack(BackendKind kind) {
  Stack s;
  drms::store::StorageBackend* inner = nullptr;
  switch (kind) {
    case BackendKind::kMemory:
      s.memory = std::make_unique<drms::store::MemoryBackend>();
      inner = s.memory.get();
      break;
    case BackendKind::kPiofs:
      s.volume = std::make_unique<drms::piofs::Volume>(4);
      s.piofs = std::make_unique<drms::store::PiofsBackend>(*s.volume);
      inner = s.piofs.get();
      break;
    case BackendKind::kTiered:
      s.volume = std::make_unique<drms::piofs::Volume>(4);
      s.piofs = std::make_unique<drms::store::PiofsBackend>(*s.volume);
      s.memory = std::make_unique<drms::store::MemoryBackend>();
      s.tiered = std::make_unique<drms::store::TieredBackend>(*s.memory,
                                                              *s.piofs);
      inner = s.tiered.get();
      break;
  }
  s.fault = std::make_unique<FaultInjectionBackend>(*inner);
  return s;
}

/// One full checkpoint attempt through the public engine API. Returns the
/// group outcome: `completed == false` when an injected fault killed it.
auto attempt_checkpoint(drms::store::StorageBackend& storage,
                        CheckpointMode mode, const std::string& prefix,
                        std::int64_t sop) {
  TaskGroup group(placement_of(kTasks));
  DistArray array("u", cube(kN), sizeof(double), kTasks);
  return group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(cube(kN), kTasks, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();

    std::int64_t it = sop;
    ReplicatedStore store;
    store.register_i64("it", &it);
    const std::array<DistArray*, 1> arrays{&array};
    if (mode == CheckpointMode::kDrms) {
      DrmsCheckpoint engine(storage, {});
      (void)engine.write(ctx, prefix, "sweep", sop, store, arrays,
                         tiny_segment());
    } else {
      SpmdCheckpoint engine(storage, {});
      (void)engine.write(ctx, prefix, "sweep", sop, store, arrays,
                         tiny_segment());
    }
  });
}

/// Count the mutations of one checkpoint under prefix B on a stack that
/// already holds a committed state under prefix A (the sweep scenario).
std::uint64_t mutation_count(CheckpointMode mode, BackendKind kind) {
  Stack s = make_stack(kind);
  EXPECT_TRUE(attempt_checkpoint(*s.fault, mode, "sweep.a", 1).completed);
  const std::uint64_t after_a = s.fault->mutation_ops();
  EXPECT_TRUE(attempt_checkpoint(*s.fault, mode, "sweep.b", 2).completed);
  return s.fault->mutation_ops() - after_a;
}

/// Crash index `i` of the B attempt; then check the recovery invariants:
/// the committed state A is the restart candidate, and fsck flags B as
/// torn whenever the crash left any of B's files behind.
void crash_at_and_check(CheckpointMode mode, BackendKind kind,
                        std::uint64_t i,
                        FaultInjectionBackend::CrashStyle style) {
  SCOPED_TRACE(std::string(to_string(kind)) + " crash index " +
               std::to_string(i));
  Stack s = make_stack(kind);
  ASSERT_TRUE(attempt_checkpoint(*s.fault, mode, "sweep.a", 1).completed);

  s.fault->arm_crash(i, style);
  const auto result = attempt_checkpoint(*s.fault, mode, "sweep.b", 2);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(s.fault->crashed());
  s.fault->disarm();

  // Restart selects the last COMMITTED state.
  const auto latest = latest_checkpoint(*s.fault, "sweep");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->prefix, "sweep.a");
  EXPECT_EQ(latest->meta.sop, 1);

  // ...and the interrupted attempt is never offered as a candidate.
  for (const auto& record : list_checkpoints(*s.fault)) {
    EXPECT_NE(record.prefix, "sweep.b");
  }

  // fsck: A committed, B torn (when the crash left files behind at all).
  const bool b_has_files = !s.fault->list("sweep.b").empty();
  bool b_torn = false;
  for (const auto& state : fsck_scan(*s.fault)) {
    if (state.prefix == "sweep.b") {
      EXPECT_FALSE(state.committed);
      EXPECT_FALSE(state.reclaimable.empty());
      b_torn = true;
    } else if (state.prefix == "sweep.a") {
      EXPECT_TRUE(state.committed) << (state.problems.empty()
                                           ? ""
                                           : state.problems.front());
    }
  }
  EXPECT_EQ(b_torn, b_has_files);

  // gc reclaims the torn files; A survives and stays restartable.
  const int removed = gc_torn_states(*s.fault);
  if (b_has_files) {
    EXPECT_GT(removed, 0);
  }
  EXPECT_TRUE(s.fault->list("sweep.b").empty());
  const auto after_gc = latest_checkpoint(*s.fault, "sweep");
  ASSERT_TRUE(after_gc.has_value());
  EXPECT_EQ(after_gc->prefix, "sweep.a");
}

class CrashSweep
    : public ::testing::TestWithParam<std::pair<CheckpointMode, BackendKind>> {
};

TEST_P(CrashSweep, EveryCrashIndexRecoversToCommittedState) {
  const auto [mode, kind] = GetParam();
  const std::uint64_t n = mutation_count(mode, kind);
  ASSERT_GT(n, 0u);
  for (std::uint64_t i = 0; i < n; ++i) {
    crash_at_and_check(mode, kind, i,
                       FaultInjectionBackend::CrashStyle::kStop);
  }
}

TEST_P(CrashSweep, TornFinalWriteLeavesStateUncommitted) {
  // The last mutation is the manifest publication; half-applying it must
  // not count as a commit.
  const auto [mode, kind] = GetParam();
  const std::uint64_t n = mutation_count(mode, kind);
  ASSERT_GT(n, 0u);
  crash_at_and_check(mode, kind, n - 1,
                     FaultInjectionBackend::CrashStyle::kTornWrite);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, CrashSweep,
    ::testing::Values(
        std::make_pair(CheckpointMode::kDrms, BackendKind::kMemory),
        std::make_pair(CheckpointMode::kDrms, BackendKind::kPiofs),
        std::make_pair(CheckpointMode::kDrms, BackendKind::kTiered),
        std::make_pair(CheckpointMode::kSpmd, BackendKind::kMemory),
        std::make_pair(CheckpointMode::kSpmd, BackendKind::kPiofs),
        std::make_pair(CheckpointMode::kSpmd, BackendKind::kTiered)),
    [](const auto& info) {
      return std::string(info.param.first == CheckpointMode::kDrms
                             ? "Drms"
                             : "Spmd") +
             to_string(info.param.second);
    });

TEST(FaultInjection, TransientFaultsAreRetriedToSuccess) {
  for (const CheckpointMode mode :
       {CheckpointMode::kDrms, CheckpointMode::kSpmd}) {
    Stack s = make_stack(BackendKind::kPiofs);
    s.fault->inject_transient_faults(3);
    const auto result = attempt_checkpoint(*s.fault, mode, "sweep.a", 1);
    EXPECT_TRUE(result.completed) << result.kill_reason;
    EXPECT_EQ(s.fault->faults_injected(), 3u);
    // The retried checkpoint is fully committed and verifiable.
    const auto records = list_checkpoints(*s.fault);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(verify_checkpoint(*s.fault, records.front()).ok);
  }
}

TEST(FaultInjection, DeadBackendFailsEverythingUntilDisarmed) {
  Stack s = make_stack(BackendKind::kMemory);
  ASSERT_TRUE(
      attempt_checkpoint(*s.fault, CheckpointMode::kDrms, "sweep.a", 1)
          .completed);
  s.fault->arm_crash(0);
  EXPECT_FALSE(
      attempt_checkpoint(*s.fault, CheckpointMode::kDrms, "sweep.b", 2)
          .completed);
  // The node is gone: even reads fail now.
  EXPECT_THROW((void)s.fault->list(), drms::support::IoError);
  EXPECT_THROW((void)s.fault->exists("sweep.a.meta"),
               drms::support::IoError);
  s.fault->disarm();
  EXPECT_TRUE(s.fault->exists(meta_file_name("sweep.a")));
}

TEST(CrashTrace, PostCrashMutationCountMatchesInjectedOpIndex) {
  // Stack the trace recorder UNDER the fault injector: the instrumented
  // layer only sees operations the injector let through, so after a crash
  // armed at op index i the recorder's "store.mutation" counter is the
  // exact number of mutations that reached storage — i for a clean stop,
  // i + 1 for a torn write (the half-write lands in the inner backend
  // before the node dies).
  for (const CheckpointMode mode :
       {CheckpointMode::kDrms, CheckpointMode::kSpmd}) {
    const std::uint64_t n = mutation_count(mode, BackendKind::kMemory);
    ASSERT_GT(n, 1u);
    const std::pair<std::uint64_t, FaultInjectionBackend::CrashStyle>
        schedule[] = {
            {0, FaultInjectionBackend::CrashStyle::kStop},
            {n / 2, FaultInjectionBackend::CrashStyle::kStop},
            {n - 1, FaultInjectionBackend::CrashStyle::kStop},
            {n - 1, FaultInjectionBackend::CrashStyle::kTornWrite},
        };
    for (const auto& [index, style] : schedule) {
      SCOPED_TRACE(std::string(mode == CheckpointMode::kDrms ? "Drms"
                                                             : "Spmd") +
                   " crash index " + std::to_string(index) +
                   (style == FaultInjectionBackend::CrashStyle::kTornWrite
                        ? " torn"
                        : " stop"));
      drms::store::MemoryBackend inner;
      ASSERT_TRUE(
          attempt_checkpoint(inner, mode, "sweep.a", 1).completed);

      drms::obs::Recorder rec;
      drms::obs::InstrumentedBackend instrumented(inner, &rec, "mem");
      FaultInjectionBackend fault(instrumented);
      fault.arm_crash(index, style);
      EXPECT_FALSE(attempt_checkpoint(fault, mode, "sweep.b", 2).completed);
      EXPECT_TRUE(fault.crashed());

      const std::uint64_t expected =
          index +
          (style == FaultInjectionBackend::CrashStyle::kTornWrite ? 1 : 0);
      EXPECT_EQ(rec.counter("store.mutation"), expected);

      // The count is final: the dead (then disarmed) backend admits no
      // further mutations from this attempt.
      fault.disarm();
      EXPECT_EQ(rec.counter("store.mutation"), expected);
    }
  }
}

/// The kill switch fired while checkpoint_write is mid-flight (a real
/// asynchronous kill from a watcher thread, racing the engine's storage
/// mutations). Unlike the deterministic crash sweep, where the kill lands
/// inside the B attempt is timing-dependent; the invariant is not: the
/// previously committed generation A must stay restorable, and anything
/// the catalog offers as committed must survive deep verification.
void kill_mid_write_and_check(CheckpointMode mode, std::uint64_t wait_ops) {
  SCOPED_TRACE(std::string(mode == CheckpointMode::kDrms ? "Drms" : "Spmd") +
               " kill after mutation " + std::to_string(wait_ops));
  Stack s = make_stack(BackendKind::kMemory);
  ASSERT_TRUE(attempt_checkpoint(*s.fault, mode, "sweep.a", 1).completed);
  const std::uint64_t after_a = s.fault->mutation_ops();

  TaskGroup group(placement_of(kTasks));
  DistArray array("u", cube(kN), sizeof(double), kTasks);
  std::thread watcher([&] {
    while (s.fault->mutation_ops() < after_a + wait_ops) {
      std::this_thread::yield();
    }
    group.kill("injected kill during checkpoint_write");
  });
  (void)group.run([&](TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(
          DistSpec::block_auto(cube(kN), kTasks, std::vector<Index>(3, 0)));
    }
    ctx.barrier();
    fill_assigned_tagged(array, ctx.rank());
    ctx.barrier();
    std::int64_t it = 2;
    ReplicatedStore store;
    store.register_i64("it", &it);
    const std::array<DistArray*, 1> arrays{&array};
    if (mode == CheckpointMode::kDrms) {
      DrmsCheckpoint engine(*s.fault, {});
      (void)engine.write(ctx, "sweep.b", "sweep", 2, store, arrays,
                         tiny_segment());
    } else {
      SpmdCheckpoint engine(*s.fault, {});
      (void)engine.write(ctx, "sweep.b", "sweep", 2, store, arrays,
                         tiny_segment());
    }
  });
  watcher.join();

  // A stays committed and content-sound no matter where the kill landed.
  bool saw_a = false;
  for (const auto& record : list_checkpoints(*s.fault)) {
    EXPECT_TRUE(verify_checkpoint(*s.fault, record, /*deep=*/true).ok)
        << record.prefix;
    saw_a = saw_a || record.prefix == "sweep.a";
  }
  EXPECT_TRUE(saw_a);
  const auto latest = latest_checkpoint(*s.fault, "sweep");
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->prefix == "sweep.a" || latest->prefix == "sweep.b");

  // A torn B (kill between its first file and the manifest) is fsck
  // debris; reclaiming it must leave A restartable.
  (void)gc_torn_states(*s.fault);
  const auto after_gc = latest_checkpoint(*s.fault, "sweep");
  ASSERT_TRUE(after_gc.has_value());
  EXPECT_TRUE(verify_checkpoint(*s.fault, *after_gc, /*deep=*/true).ok);
}

TEST(CrashSweepKillSwitch, KillDuringWriteLeavesPreviousGenerationGood) {
  for (const CheckpointMode mode :
       {CheckpointMode::kDrms, CheckpointMode::kSpmd}) {
    const std::uint64_t n = mutation_count(mode, BackendKind::kMemory);
    ASSERT_GT(n, 1u);
    for (const std::uint64_t wait_ops : {std::uint64_t{0}, n / 2, n - 1}) {
      kill_mid_write_and_check(mode, wait_ops);
    }
  }
}

/// Delta-commit crash sweep: a full base A commits, then a DELTA attempt
/// B (chained on A) crashes at an injected mutation index. The chain adds
/// write ordering of its own — payload blocks, framed index, then the
/// delta header LAST, before the usual meta/manifest publication — and
/// every crash point must degrade to "A restorable, B invisible".
struct DeltaSweepHarness {
  Stack stack;
  std::unique_ptr<DistArray> array;
  DeltaChainState chain;

  explicit DeltaSweepHarness(BackendKind kind) : stack(make_stack(kind)) {
    array = std::make_unique<DistArray>("u", cube(kN), sizeof(double),
                                        kTasks);
    array->enable_dirty_tracking();
  }

  auto attempt(const std::string& prefix, std::int64_t sop) {
    TaskGroup group(placement_of(kTasks));
    const bool first = !array->distributed();
    return group.run([&](TaskContext& ctx) {
      if (ctx.rank() == 0 && first) {
        array->install_distribution(DistSpec::block_auto(
            cube(kN), kTasks, std::vector<Index>(3, 0)));
      }
      ctx.barrier();
      if (first) {
        fill_assigned_tagged(*array, ctx.rank());
      } else {
        // Dirty one point per task: B stores a handful of blocks.
        const Slice& assigned = array->distribution().assigned(ctx.rank());
        std::vector<Index> p;
        for (int k = 0; k < assigned.rank(); ++k) {
          p.push_back(assigned.range(k).first());
        }
        array->local(ctx.rank()).set_f64(p, 1234.5 + sop);
      }
      ctx.barrier();

      std::int64_t it = sop;
      ReplicatedStore store;
      store.register_i64("it", &it);
      const std::array<DistArray*, 1> arrays{array.get()};
      DeltaOptions opts;
      opts.enabled = true;
      opts.full_every_k = 4;
      opts.block_bytes = 512;
      DrmsCheckpoint engine(*stack.fault, {});
      (void)engine.write(ctx, prefix, "sweep", sop, store, arrays,
                         tiny_segment(), nullptr, &opts, &chain);
    });
  }
};

std::uint64_t delta_mutation_count(BackendKind kind) {
  DeltaSweepHarness h(kind);
  EXPECT_TRUE(h.attempt("sweep.a", 1).completed);
  EXPECT_EQ(h.chain.last_kind, GenerationKind::kFull);
  const std::uint64_t after_a = h.stack.fault->mutation_ops();
  EXPECT_TRUE(h.attempt("sweep.b", 2).completed);
  EXPECT_EQ(h.chain.last_kind, GenerationKind::kDelta);
  return h.stack.fault->mutation_ops() - after_a;
}

void delta_crash_at_and_check(BackendKind kind, std::uint64_t i,
                              FaultInjectionBackend::CrashStyle style) {
  SCOPED_TRACE(std::string(to_string(kind)) + " delta crash index " +
               std::to_string(i));
  DeltaSweepHarness h(kind);
  ASSERT_TRUE(h.attempt("sweep.a", 1).completed);

  h.stack.fault->arm_crash(i, style);
  const auto result = h.attempt("sweep.b", 2);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(h.stack.fault->crashed());
  h.stack.fault->disarm();

  // The chain never advanced past the committed base...
  ASSERT_EQ(h.chain.chain.size(), 1u);
  EXPECT_EQ(h.chain.chain.front(), "sweep.a");

  // ...the base is the restart candidate, the torn delta is invisible...
  const auto latest = latest_checkpoint(*h.stack.fault, "sweep");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->prefix, "sweep.a");
  for (const auto& record : list_checkpoints(*h.stack.fault)) {
    EXPECT_NE(record.prefix, "sweep.b");
  }

  // ...fsck flags whatever files the crash left behind, gc reclaims them,
  // and the base still deep-verifies afterwards.
  const bool b_has_files = !h.stack.fault->list("sweep.b").empty();
  bool b_torn = false;
  for (const auto& state : fsck_scan(*h.stack.fault)) {
    if (state.prefix == "sweep.b") {
      EXPECT_FALSE(state.committed);
      EXPECT_FALSE(state.reclaimable.empty());
      b_torn = true;
    }
  }
  EXPECT_EQ(b_torn, b_has_files);
  (void)gc_torn_states(*h.stack.fault);
  EXPECT_TRUE(h.stack.fault->list("sweep.b").empty());
  const auto after_gc = latest_checkpoint(*h.stack.fault, "sweep");
  ASSERT_TRUE(after_gc.has_value());
  EXPECT_TRUE(verify_checkpoint(*h.stack.fault, *after_gc, /*deep=*/true).ok);
}

class DeltaCrashSweep : public ::testing::TestWithParam<BackendKind> {};

TEST_P(DeltaCrashSweep, EveryCrashIndexRecoversToCommittedBase) {
  const BackendKind kind = GetParam();
  const std::uint64_t n = delta_mutation_count(kind);
  ASSERT_GT(n, 0u);
  for (std::uint64_t i = 0; i < n; ++i) {
    delta_crash_at_and_check(kind, i,
                             FaultInjectionBackend::CrashStyle::kStop);
  }
}

TEST_P(DeltaCrashSweep, TornFinalWriteLeavesDeltaUncommitted) {
  const BackendKind kind = GetParam();
  const std::uint64_t n = delta_mutation_count(kind);
  ASSERT_GT(n, 0u);
  delta_crash_at_and_check(kind, n - 1,
                           FaultInjectionBackend::CrashStyle::kTornWrite);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DeltaCrashSweep,
    ::testing::Values(BackendKind::kMemory, BackendKind::kPiofs,
                      BackendKind::kTiered),
    [](const auto& info) { return std::string(to_string(info.param)); });

// ---- partial-restore read-crash sweep ---------------------------------------
//
// A partial restart's bring-up window is READ-only: select reads the
// meta/commit records, verify deep-reads the chosen generation, and the
// replacement task streams its sections in while survivors adopt from
// memory. Killing the storage at EVERY read index inside that window must
// degrade to a clean full restart of the same generation — never to a
// corrupted resume or a dead supervisor.

namespace partial_sweep {

constexpr Index kFieldN = 8;
constexpr int kIterations = 12;
constexpr int kCheckpointEvery = 3;
constexpr int kPoolTasks = 4;

drms::apps::SolverOptions sweep_solver_options() {
  drms::apps::AppSpec spec = drms::apps::AppSpec::sp();
  spec.arrays.resize(2);
  spec.private_bytes = 4 * 1024;
  spec.system_bytes = 4 * 1024;
  spec.text_bytes = 4 * 1024;
  drms::apps::SolverOptions o;
  o.spec = spec;
  o.n = kFieldN;
  o.iterations = kIterations;
  o.checkpoint_every = kCheckpointEvery;
  o.prefix = "job";
  return o;
}

/// The failure-free fingerprint (distribution-invariant, computed once).
std::uint32_t sweep_baseline_crc() {
  static const std::uint32_t crc = [] {
    drms::store::MemoryBackend storage;
    drms::apps::SolverOptions o = sweep_solver_options();
    o.prefix.clear();
    drms::core::DrmsEnv env;
    env.storage = &storage;
    auto program = drms::apps::make_program(o, env, kPoolTasks);
    std::uint32_t out = 0;
    TaskGroup group(placement_of(kPoolTasks));
    const auto run = group.run([&](TaskContext& ctx) {
      const auto outcome = drms::apps::run_solver(*program, ctx, o);
      if (ctx.rank() == 0) {
        out = outcome.field_crc;
      }
    });
    EXPECT_TRUE(run.completed);
    return out;
  }();
  return crc;
}

struct SweepRun {
  drms::recovery::RecoveryReport report;
  /// Reads consumed by select + verify on the first recovery (the
  /// supervisor-thread sub-window a storage crash may not target: the
  /// sweep starts right after it).
  std::uint64_t verify_reads = 0;
  /// Reads from the first recovery's select start to the relaunched
  /// solver's first iteration (select + verify + restore).
  std::uint64_t window_reads = 0;
  std::uint64_t partial_attempts = 0;
  std::uint64_t partial_fallbacks = 0;
  std::uint64_t suspects_marked = 0;
  std::uint64_t survivor_read_bytes = 0;
};

/// One supervised node-loss run with the fault decorator under the
/// supervisor. `crash_read_index < 0` is the dry sizing pass; otherwise
/// the index-th read after the first recovery's select start dies and the
/// backend stays dead until the next recovery begins.
SweepRun run_with_read_crash(std::int64_t crash_read_index) {
  drms::store::MemoryBackend memory;
  FaultInjectionBackend fault(memory);
  drms::sim::Machine machine;
  machine.node_count = kPoolTasks;
  machine.server_count = kPoolTasks;
  drms::arch::Cluster cluster(machine, nullptr);
  drms::obs::Recorder recorder;
  drms::recovery::RecoverySupervisor supervisor(cluster);

  drms::recovery::SupervisorOptions o;
  o.solver = sweep_solver_options();
  o.env.storage = &fault;
  o.env.recorder = &recorder;
  o.preferred_tasks = kPoolTasks;
  o.min_tasks = 1;
  o.partial_restore = true;
  o.recorder = &recorder;
  o.fault = &fault;

  SweepRun out;
  int recoveries = 0;
  std::atomic<bool> first_recovery_started{false};
  std::atomic<bool> window_measured{false};

  // The scavenge hook runs on the supervisor thread before the select
  // phase of every restart — the exact boundary of the bring-up read
  // window, and the first point after a crash where the replacement
  // node's storage path is back (disarm).
  o.scavenge = [&]() -> drms::store::ScavengeReport {
    ++recoveries;
    if (recoveries == 1) {
      if (crash_read_index < 0) {
        // Sizing pass: replay select + verify by hand to split the
        // window, then reset the read counter (an unreachable crash
        // index) so window_reads counts from the real select start.
        const std::uint64_t before = fault.read_ops();
        for (const auto& c : drms::core::restart_candidates(
                 fault, o.solver.spec.name, o.solver.prefix + ".g")) {
          if (drms::core::verify_checkpoint(fault, c, /*deep=*/true).ok) {
            break;
          }
        }
        out.verify_reads = fault.read_ops() - before;
        fault.arm_read_crash(std::numeric_limits<std::uint64_t>::max());
      } else {
        fault.arm_read_crash(
            static_cast<std::uint64_t>(crash_read_index));
      }
      first_recovery_started.store(true);
    } else {
      fault.disarm();
    }
    return {};
  };
  // The supervisor chains this hook after its own: the first iteration of
  // the relaunched solver marks the end of the restore read window.
  o.solver.on_iteration = [&](std::int64_t, TaskContext& ctx) {
    if (ctx.rank() == 0 && first_recovery_started.load() &&
        !window_measured.exchange(true)) {
      out.window_reads = fault.read_ops();
    }
  };

  drms::recovery::FailureSchedule schedule;
  drms::recovery::FailureEvent loss;
  loss.kind = drms::recovery::FailureKind::kNodeLoss;
  loss.launch = 0;
  loss.at_iteration = 5;  // after the SOP-3 commit, before SOP 6
  loss.node_ordinal = 2;
  schedule.events.push_back(loss);

  out.report = supervisor.run(o, schedule);
  out.partial_attempts = recorder.counter("recover.partial.attempted");
  out.partial_fallbacks = recorder.counter("recover.partial.fallback_full");
  out.suspects_marked = recorder.counter("recover.suspect_marked");
  out.survivor_read_bytes =
      recorder.counter("recover.partial.survivor_read_bytes");
  return out;
}

TEST(CrashSweepPartialRestore, DryRunSizesTheRestoreReadWindow) {
  const SweepRun dry = run_with_read_crash(-1);
  ASSERT_TRUE(dry.report.completed);
  ASSERT_EQ(dry.report.launches.size(), 2u);
  EXPECT_TRUE(dry.report.launches[1].partial);
  EXPECT_EQ(dry.report.outcome.field_crc, sweep_baseline_crc());
  // The window splits into a non-empty verify sub-window followed by the
  // replacement task's restore reads.
  EXPECT_GT(dry.verify_reads, 0u);
  EXPECT_GT(dry.window_reads, dry.verify_reads);
  EXPECT_EQ(dry.survivor_read_bytes, 0u);
}

TEST(CrashSweepPartialRestore, EveryReadCrashFallsBackToAFullRestart) {
  const SweepRun dry = run_with_read_crash(-1);
  ASSERT_TRUE(dry.report.completed);
  ASSERT_GT(dry.window_reads, dry.verify_reads);

  for (std::uint64_t i = dry.verify_reads; i < dry.window_reads; ++i) {
    SCOPED_TRACE("read crash index " + std::to_string(i));
    const SweepRun run =
        run_with_read_crash(static_cast<std::int64_t>(i));

    // The job still finishes, and on the SAME generation: the fallback
    // ladder retries full scope before any SOP rollback.
    ASSERT_TRUE(run.report.completed);
    ASSERT_EQ(run.report.launches.size(), 3u);
    EXPECT_TRUE(run.report.launches[1].partial);
    EXPECT_FALSE(run.report.launches[1].completed);
    EXPECT_FALSE(run.report.launches[1].errors.empty());
    EXPECT_FALSE(run.report.launches[2].partial);
    EXPECT_TRUE(run.report.launches[2].from_checkpoint);
    EXPECT_EQ(run.report.launches[2].restart_prefix, "job.g000003");
    EXPECT_EQ(run.partial_attempts, 1u);
    EXPECT_EQ(run.partial_fallbacks, 1u);
    EXPECT_EQ(run.suspects_marked, 0u);

    // No survivor state corruption: survivors never read checkpoint
    // data, and the resumed field is bit-identical to the failure-free
    // baseline.
    EXPECT_EQ(run.survivor_read_bytes, 0u);
    EXPECT_EQ(run.report.outcome.field_crc, sweep_baseline_crc());
  }
}

}  // namespace partial_sweep

TEST(FaultInjection, MutationOpsCountsOnlyMutations) {
  Stack s = make_stack(BackendKind::kMemory);
  ASSERT_TRUE(
      attempt_checkpoint(*s.fault, CheckpointMode::kDrms, "sweep.a", 1)
          .completed);
  const std::uint64_t ops = s.fault->mutation_ops();
  EXPECT_GT(ops, 0u);
  // Reads, listings and size queries do not advance the counter.
  (void)s.fault->list();
  (void)s.fault->exists(meta_file_name("sweep.a"));
  (void)s.fault->file_size(meta_file_name("sweep.a"));
  (void)latest_checkpoint(*s.fault, "sweep");
  EXPECT_EQ(s.fault->mutation_ops(), ops);
}

}  // namespace
