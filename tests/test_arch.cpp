// Tests for the DRMS infrastructure (§4): processor pools, the RC's
// failure-detection/teardown protocol, and the JSA's reconfigured restart
// of failed applications from their latest checkpoint.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/solver.hpp"
#include "arch/cluster.hpp"
#include "arch/scheduler.hpp"
#include "arch/uic.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::arch;
using drms::apps::AppSpec;
using drms::apps::SolverOptions;
using drms::apps::SolverOutcome;
using drms::core::CheckpointMode;
using drms::core::DrmsEnv;
using Volume = drms::test::TestVolume;
using drms::sim::Machine;

TEST(Cluster, AllocateAndRelease) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  EXPECT_EQ(cluster.available_processors(), 16);

  const auto nodes = cluster.allocate(4, 8, "job1");
  EXPECT_EQ(nodes.size(), 8u);
  EXPECT_EQ(cluster.available_processors(), 8);
  EXPECT_EQ(cluster.nodes_of("job1").size(), 8u);

  const auto more = cluster.allocate(4, 12, "job2");
  EXPECT_EQ(more.size(), 8u);  // capped by availability
  EXPECT_EQ(cluster.available_processors(), 0);

  cluster.release("job1");
  EXPECT_EQ(cluster.available_processors(), 8);
  cluster.release("job2");
  EXPECT_EQ(cluster.available_processors(), 16);
  EXPECT_EQ(log.count(EventKind::kProcessorsAllocated), 2);
  EXPECT_EQ(log.count(EventKind::kProcessorsReleased), 2);
}

TEST(Cluster, AllocationBelowMinimumReturnsEmpty) {
  Cluster cluster(Machine::paper_sp16(), nullptr);
  (void)cluster.allocate(1, 14, "big");
  EXPECT_TRUE(cluster.allocate(4, 8, "small").empty());
  EXPECT_EQ(cluster.available_processors(), 2);  // nothing was taken
}

TEST(Cluster, FailedNodeLeavesThePool) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  cluster.fail_node(3);
  EXPECT_FALSE(cluster.node_up(3));
  EXPECT_EQ(cluster.available_processors(), 15);
  EXPECT_EQ(log.count(EventKind::kTcLost), 1);

  // Allocation avoids the failed node.
  const auto nodes = cluster.allocate(16, 16, "all");
  EXPECT_TRUE(nodes.empty());
  const auto some = cluster.allocate(15, 15, "most");
  EXPECT_EQ(some.size(), 15u);
  for (const int n : some) {
    EXPECT_NE(n, 3);
  }
  cluster.release("most");

  cluster.repair_node(3);
  EXPECT_TRUE(cluster.node_up(3));
  EXPECT_EQ(cluster.available_processors(), 16);
  EXPECT_GE(log.count(EventKind::kTcReactivated), 1);
}

TEST(Cluster, FailureKillsTheOwningPool) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  const auto nodes = cluster.allocate(4, 4, "victim");
  ASSERT_EQ(nodes.size(), 4u);

  drms::rt::TaskGroup group(
      drms::sim::Placement(cluster.machine(), nodes));
  cluster.register_pool("victim", &group);

  std::thread injector([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cluster.fail_node(nodes[2]);
  });
  const auto result = group.run([](drms::rt::TaskContext& ctx) {
    for (;;) {
      ctx.check_killed();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  injector.join();
  EXPECT_TRUE(result.killed);
  EXPECT_NE(result.kill_reason.find("lost connection to TC"),
            std::string::npos);
  // The RC protocol of §4 fired, in order.
  EXPECT_EQ(log.count(EventKind::kTcLost), 1);
  EXPECT_EQ(log.count(EventKind::kPoolKilled), 1);
  EXPECT_EQ(log.count(EventKind::kJobTerminated), 1);
  EXPECT_EQ(log.count(EventKind::kUserInformed), 1);
  EXPECT_EQ(log.count(EventKind::kTcRestarting), 4);   // whole pool
  EXPECT_EQ(log.count(EventKind::kTcReactivated), 3);  // healthy nodes
  cluster.deregister_pool("victim");
  cluster.release("victim");
  // Failed node still out until repaired.
  EXPECT_EQ(cluster.available_processors(), 15);
}

TEST(Cluster, FailingAnIdleNodeKillsNothing) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  cluster.fail_node(9);
  EXPECT_EQ(log.count(EventKind::kPoolKilled), 0);
  cluster.fail_node(9);  // idempotent
  EXPECT_EQ(log.count(EventKind::kTcLost), 1);
}

/// Standard solver job used by the scheduler tests.
JobDescriptor solver_job(Volume& volume, const SolverOptions& options,
                         std::shared_ptr<SolverOutcome> last_outcome,
                         int preferred_tasks) {
  JobDescriptor job;
  job.name = options.spec.name;
  job.min_tasks = 2;
  job.preferred_tasks = preferred_tasks;
  job.checkpoint_prefix = options.prefix;
  job.base_env.storage = &volume.backend();
  job.make_program = [options](DrmsEnv env, int tasks) {
    return drms::apps::make_program(options, env, tasks);
  };
  job.body = [options, last_outcome](drms::core::DrmsProgram& program,
                                     drms::rt::TaskContext& ctx) {
    const SolverOutcome out = drms::apps::run_solver(program, ctx, options);
    if (ctx.rank() == 0 && last_outcome != nullptr) {
      *last_outcome = out;
    }
  };
  return job;
}

TEST(JobScheduler, RunsAJobToCompletion) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);

  SolverOptions options;
  options.spec = AppSpec::sp();
  options.n = 8;
  options.iterations = 8;
  options.checkpoint_every = 4;
  options.prefix = "job.sp";
  auto outcome_slot = std::make_shared<SolverOutcome>();

  const JobOutcome outcome =
      jsa.run_job(solver_job(volume, options, outcome_slot, 4));
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_EQ(outcome.attempts[0].tasks, 4);
  EXPECT_FALSE(outcome.attempts[0].from_checkpoint);
  EXPECT_EQ(log.count(EventKind::kJobLaunched), 1);
  EXPECT_EQ(log.count(EventKind::kJobCompleted), 1);
  EXPECT_EQ(cluster.available_processors(), 16);  // everything returned
  EXPECT_NE(outcome_slot->field_crc, 0u);
}

TEST(JobScheduler, InsufficientProcessorsThrows) {
  Cluster cluster(Machine::paper_sp16(), nullptr);
  (void)cluster.allocate(1, 15, "hog");
  JobScheduler jsa(cluster, nullptr);
  Volume volume(16);
  SolverOptions options;
  options.spec = AppSpec::sp();
  options.n = 8;
  options.iterations = 2;
  EXPECT_THROW((void)jsa.run_job(solver_job(volume, options, nullptr, 4)),
               drms::support::Error);
}

TEST(JobScheduler, RecoversFromFailureViaReconfiguredRestart) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);

  constexpr int kIters = 12;
  // Reference: uninterrupted run on 4 tasks.
  std::uint32_t reference_crc = 0;
  {
    Volume ref_volume(16);
    SolverOptions ref;
    ref.spec = AppSpec::bt();
    ref.n = 8;
    ref.iterations = kIters;
    ref.checkpoint_every = 5;
    ref.prefix = "ref";
    auto slot = std::make_shared<SolverOutcome>();
    JobScheduler ref_jsa(cluster, nullptr);
    const auto out = ref_jsa.run_job(solver_job(ref_volume, ref, slot, 4));
    ASSERT_TRUE(out.completed);
    reference_crc = slot->field_crc;
  }

  // Failure-injected run: the solver blocks at iteration 6 (after the
  // it=5 checkpoint) until the RC kills it; the relaunch must restart
  // from the checkpoint on the 3 remaining processors of the 4-node
  // machine slice we give it.
  std::atomic<bool> injected{false};
  std::atomic<bool> ready_for_failure{false};
  SolverOptions options;
  options.spec = AppSpec::bt();
  options.n = 8;
  options.iterations = kIters;
  options.checkpoint_every = 5;
  options.prefix = "job.bt";
  options.on_iteration = [&](std::int64_t it, drms::rt::TaskContext& ctx) {
    if (!injected.load() && it >= 6) {
      if (ctx.rank() == 0) {
        ready_for_failure.store(true);
      }
      for (;;) {
        ctx.check_killed();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  auto slot = std::make_shared<SolverOutcome>();
  const JobDescriptor job = solver_job(volume, options, slot, 4);

  std::thread injector([&] {
    while (!ready_for_failure.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto nodes = cluster.nodes_of("BT");
    ASSERT_FALSE(nodes.empty());
    injected.store(true);
    cluster.fail_node(nodes[1]);
  });
  const JobOutcome outcome = jsa.run_job(job);
  injector.join();

  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.attempts.size(), 2u);
  EXPECT_TRUE(outcome.attempts[0].killed);
  EXPECT_EQ(outcome.attempts[0].tasks, 4);
  EXPECT_TRUE(outcome.attempts[1].from_checkpoint);
  EXPECT_EQ(outcome.attempts[1].tasks, 4);  // 15 nodes free, wants 4
  EXPECT_EQ(log.count(EventKind::kJobRestarted), 1);
  EXPECT_EQ(log.count(EventKind::kPoolKilled), 1);
  // The restarted run resumed from it=5 and finished identically.
  EXPECT_TRUE(slot->restarted);
  EXPECT_EQ(slot->start_iteration, 5);
  EXPECT_EQ(slot->field_crc, reference_crc);
}

TEST(JobScheduler, RestartShrinksWhenProcessorsAreScarce) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);

  // Occupy 12 nodes so the job gets exactly 4; after one fails, only 3
  // remain for the restart -> delta = -1.
  (void)cluster.allocate(1, 12, "hog");

  std::atomic<bool> injected{false};
  std::atomic<bool> ready{false};
  SolverOptions options;
  options.spec = AppSpec::sp();
  options.n = 8;
  options.iterations = 10;
  options.checkpoint_every = 5;
  options.prefix = "job.shrink";
  options.on_iteration = [&](std::int64_t it, drms::rt::TaskContext& ctx) {
    if (!injected.load() && it >= 6) {
      if (ctx.rank() == 0) {
        ready.store(true);
      }
      for (;;) {
        ctx.check_killed();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  auto slot = std::make_shared<SolverOutcome>();
  const JobDescriptor job = solver_job(volume, options, slot, 4);

  std::thread injector([&] {
    while (!ready.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto nodes = cluster.nodes_of("SP");
    ASSERT_FALSE(nodes.empty());
    injected.store(true);
    cluster.fail_node(nodes[0]);
  });
  const JobOutcome outcome = jsa.run_job(job);
  injector.join();

  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.attempts.size(), 2u);
  EXPECT_EQ(outcome.attempts[1].tasks, 3);
  EXPECT_TRUE(slot->restarted);
  EXPECT_EQ(slot->delta, -1);
}

TEST(JobScheduler, SystemInitiatedCheckpointViaChkenable) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);

  SolverOptions options;
  options.spec = AppSpec::lu();
  options.n = 8;
  options.iterations = 14;
  options.checkpoint_every = 3;
  options.prefix = "sys.lu";
  options.use_chkenable = true;
  options.compute_field_crc = false;
  // Arm the system signal once, between SOPs, from iteration 4 (the JSA's
  // request is asynchronous in production; issuing it from the running
  // body keeps the test deterministic). The it=6 SOP consumes it.
  options.on_iteration = [&](std::int64_t it, drms::rt::TaskContext& ctx) {
    if (it == 4 && ctx.rank() == 0) {
      EXPECT_TRUE(jsa.request_checkpoint("LU"));
    }
  };
  auto slot = std::make_shared<SolverOutcome>();
  const JobDescriptor job = solver_job(volume, options, slot, 3);
  const JobOutcome outcome = jsa.run_job(job);

  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(log.count(EventKind::kCheckpointRequested), 1);
  // The one-shot signal fired at exactly one SOP.
  EXPECT_EQ(slot->checkpoints_written, 1);
  EXPECT_TRUE(drms::core::checkpoint_exists(volume, "sys.lu"));
}

TEST(JobScheduler, PreemptionShrinksARunningJob) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);

  // Occupy 8 nodes so the job starts on the remaining 8; after preemption
  // we grab 4 more so the relaunch only finds 4.
  (void)cluster.allocate(1, 8, "hog");

  SolverOptions options;
  options.spec = AppSpec::sp();
  options.n = 8;
  options.iterations = 40;
  options.checkpoint_every = 4;
  options.prefix = "pre.sp";
  options.use_chkenable = true;
  options.compute_field_crc = false;
  // Slow the job down a touch so the preemption lands mid-run.
  options.on_iteration = [](std::int64_t, drms::rt::TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  auto slot = std::make_shared<SolverOutcome>();
  JobDescriptor job = solver_job(volume, options, slot, 8);
  job.restart_from_latest = true;

  std::thread scheduler_thread([&] {
    // Wait for the job to be running, then preempt and squeeze it.
    while (cluster.nodes_of("SP").empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(jsa.preempt_job("SP", volume, "pre.sp", 0));
    // Take 4 of the released nodes before the relaunch can.
    while (cluster.nodes_of("SP").size() != 0 &&
           cluster.available_processors() < 8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const JobOutcome outcome = jsa.run_job(job);
  scheduler_thread.join();

  EXPECT_TRUE(outcome.completed);
  ASSERT_GE(outcome.attempts.size(), 2u);
  EXPECT_TRUE(outcome.attempts[0].killed);
  EXPECT_NE(outcome.attempts[0].kill_reason.find("preempted"),
            std::string::npos);
  EXPECT_TRUE(outcome.attempts[1].from_checkpoint);
  EXPECT_TRUE(slot->restarted);
  EXPECT_GT(slot->start_iteration, 0);
  EXPECT_EQ(log.count(EventKind::kJobPreempted), 1);
  EXPECT_EQ(log.count(EventKind::kCheckpointRequested), 1);
}

TEST(JobScheduler, DrainNodeEvictsAndFailsIt) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);

  SolverOptions options;
  options.spec = AppSpec::bt();
  options.n = 8;
  options.iterations = 40;
  options.checkpoint_every = 4;
  options.prefix = "drain.bt";
  options.use_chkenable = true;
  options.compute_field_crc = false;
  options.on_iteration = [](std::int64_t, drms::rt::TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  auto slot = std::make_shared<SolverOutcome>();
  JobDescriptor job = solver_job(volume, options, slot, 4);
  job.restart_from_latest = true;

  int drained_node = -1;
  std::thread maintenance([&] {
    while (cluster.nodes_of("BT").empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    drained_node = cluster.nodes_of("BT")[1];
    EXPECT_TRUE(jsa.drain_node(drained_node, volume, "drain.bt", 0));
  });
  const JobOutcome outcome = jsa.run_job(job);
  maintenance.join();

  EXPECT_TRUE(outcome.completed);
  ASSERT_GE(outcome.attempts.size(), 2u);
  EXPECT_TRUE(outcome.attempts[1].from_checkpoint);
  EXPECT_TRUE(slot->restarted);
  EXPECT_FALSE(cluster.node_up(drained_node));
  EXPECT_EQ(log.count(EventKind::kNodeDrained), 1);
  cluster.repair_node(drained_node);
  EXPECT_TRUE(cluster.node_up(drained_node));
}

TEST(Uic, FacadeWiresEverything) {
  EventLog log;
  Cluster cluster(Machine::paper_sp16(), &log);
  JobScheduler jsa(cluster, &log);
  Volume volume(16);
  Uic uic(cluster, jsa, volume, log);

  EXPECT_EQ(uic.available_processors(), 16);
  uic.admin_fail_node(5);
  EXPECT_EQ(uic.available_processors(), 15);
  uic.admin_repair_node(5);
  EXPECT_EQ(uic.available_processors(), 16);

  SolverOptions options;
  options.spec = AppSpec::sp();
  options.n = 8;
  options.iterations = 6;
  options.checkpoint_every = 3;
  options.prefix = "uic.sp";
  const JobOutcome outcome =
      uic.submit_and_wait(solver_job(volume, options, nullptr, 2));
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(uic.list_checkpoint_files("uic.sp").empty());
  EXPECT_FALSE(uic.event_trace().empty());
  EXPECT_FALSE(uic.request_checkpoint("SP"));  // job no longer running
}

}  // namespace
