// Tests for the checkpoint catalog: enumeration across DRMS and SPMD
// states, latest-SOP selection, torn-meta exclusion, and retention.
#include <gtest/gtest.h>

#include <array>

#include "core/checkpoint_catalog.hpp"
#include "core/drms_context.hpp"
#include "rt/task_group.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::core;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::test::cube;
using drms::test::placement_of;

AppSegmentModel tiny_segment() {
  AppSegmentModel m;
  m.static_local_bytes = 8 * 1024;
  m.system_bytes = 8 * 1024;
  return m;
}

/// Write `checkpoints` under alternating prefixes through the public API.
void write_states(Volume& volume, const std::string& app, int tasks,
                  int checkpoints, CheckpointMode mode) {
  DrmsEnv env;
  env.storage = &volume.backend();
  env.mode = mode;
  DrmsProgram program(app, env, tiny_segment(), tasks);
  TaskGroup group(placement_of(tasks));
  const auto result = group.run([&](TaskContext& ctx) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{5, 5, 5};
    DistArray& u = drms.create_array("u", lo, hi);
    drms.distribute(u, DistSpec::block_auto(cube(6), tasks,
                                            std::vector<Index>(3, 0)));
    for (int c = 0; c < checkpoints; ++c) {
      (void)drms.reconfig_checkpoint(app + (c % 2 == 0 ? ".even"
                                                       : ".odd"));
    }
  });
  ASSERT_TRUE(result.completed);
}

TEST(CheckpointCatalog, ListsAllStatesSortedBySop) {
  Volume volume(16);
  write_states(volume, "alpha", 3, 3, CheckpointMode::kDrms);
  write_states(volume, "beta", 2, 1, CheckpointMode::kSpmd);

  const auto records = list_checkpoints(volume);
  // alpha wrote SOP 1 (even), 2 (odd), 3 (even overwrites SOP 1);
  // beta wrote one SPMD state. Prefix "alpha.even" holds SOP 3 now.
  ASSERT_EQ(records.size(), 3u);
  EXPECT_LE(records[0].meta.sop, records[1].meta.sop);
  EXPECT_LE(records[1].meta.sop, records[2].meta.sop);

  int spmd_count = 0;
  for (const auto& r : records) {
    if (r.spmd) {
      ++spmd_count;
      EXPECT_EQ(r.meta.app_name, "beta");
      EXPECT_EQ(r.meta.task_count, 2);
    }
    EXPECT_GT(r.state_bytes, 0u);
  }
  EXPECT_EQ(spmd_count, 1);
}

TEST(CheckpointCatalog, LatestPicksHighestSop) {
  Volume volume(16);
  write_states(volume, "alpha", 3, 3, CheckpointMode::kDrms);
  const auto latest = latest_checkpoint(volume, "alpha");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->meta.sop, 3);
  EXPECT_EQ(latest->prefix, "alpha.even");
  EXPECT_FALSE(latest_checkpoint(volume, "nonexistent").has_value());
}

TEST(CheckpointCatalog, TornMetaIsSkipped) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  // Corrupt one meta record.
  auto meta_file = volume.open(meta_file_name("alpha.even"));
  auto byte = meta_file.read_at(10, 1);
  byte[0] ^= std::byte{0xff};
  meta_file.write_at(10, byte);

  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].prefix, "alpha.odd");
}

TEST(CheckpointCatalog, RemoveDeletesEveryFile) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  write_states(volume, "beta", 2, 1, CheckpointMode::kSpmd);

  auto records = list_checkpoints(volume);
  const std::size_t before = volume.list().size();
  ASSERT_FALSE(records.empty());
  remove_checkpoint(volume, records.front());
  EXPECT_LT(volume.list().size(), before);
  EXPECT_EQ(list_checkpoints(volume).size(), records.size() - 1);

  // Remove the SPMD one too.
  for (const auto& r : list_checkpoints(volume)) {
    if (r.spmd) {
      remove_checkpoint(volume, r);
    }
  }
  for (const auto& r : list_checkpoints(volume)) {
    EXPECT_FALSE(r.spmd);
  }
}

TEST(CheckpointCatalog, VerifyPassesOnCleanStates) {
  Volume volume(16);
  write_states(volume, "alpha", 3, 2, CheckpointMode::kDrms);
  write_states(volume, "beta", 2, 1, CheckpointMode::kSpmd);
  for (const auto& record : list_checkpoints(volume)) {
    const auto result = verify_checkpoint(volume, record);
    EXPECT_TRUE(result.ok) << record.prefix << ": "
                           << (result.problems.empty()
                                   ? ""
                                   : result.problems.front());
  }
}

TEST(CheckpointCatalog, VerifyFlagsACorruptedArray) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 1, CheckpointMode::kDrms);
  auto f = volume.open(array_file_name("alpha.even", "u"));
  auto b = f.read_at(100, 1);
  b[0] ^= std::byte{0x10};
  f.write_at(100, b);

  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 1u);
  const auto result = verify_checkpoint(volume, records[0]);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("stream CRC"), std::string::npos);
}

TEST(CheckpointCatalog, VerifyFlagsAMissingSegment) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 1, CheckpointMode::kDrms);
  // Snapshot the record while the state is whole, then break it: the
  // catalog itself drops states with missing files, so the verifier must
  // report the damage given a previously-taken record.
  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(list_checkpoints(volume).size() == 1);
  volume.remove(segment_file_name("alpha.even"));
  const auto result = verify_checkpoint(volume, records[0]);
  EXPECT_FALSE(result.ok);
  // And the catalog no longer offers the damaged state as a candidate.
  EXPECT_TRUE(list_checkpoints(volume).empty());
}

TEST(CheckpointCatalog, VerifyFlagsACorruptSpmdSegment) {
  Volume volume(16);
  write_states(volume, "beta", 2, 1, CheckpointMode::kSpmd);
  auto f = volume.open(spmd_task_file_name("beta.even", 1));
  auto b = f.read_at(50, 1);
  b[0] ^= std::byte{0x01};
  f.write_at(50, b);
  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 1u);
  const auto result = verify_checkpoint(volume, records[0]);
  EXPECT_FALSE(result.ok);
}

TEST(CheckpointCatalog, CommitStatusDescribesACleanState) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 1, CheckpointMode::kDrms);
  const auto check = commit_status(volume, "alpha.even", /*spmd=*/false);
  EXPECT_TRUE(check.committed) << (check.problems.empty()
                                       ? ""
                                       : check.problems.front());
  // The manifest lists the meta, the segment and the array file, each
  // with its exact on-volume size.
  ASSERT_GE(check.manifest.entries.size(), 3u);
  for (const auto& entry : check.manifest.entries) {
    EXPECT_TRUE(volume.exists(entry.name)) << entry.name;
    EXPECT_EQ(volume.backend().file_size(entry.name), entry.size);
  }
  // The manifest records the layout: the wrong one is not committed.
  EXPECT_FALSE(commit_status(volume, "alpha.even", /*spmd=*/true).committed);
  // A prefix with no state at all is simply uncommitted.
  EXPECT_FALSE(commit_status(volume, "nothing", /*spmd=*/false).committed);
}

TEST(CheckpointCatalog, TruncatedArrayFileIsExcludedAndFlagged) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 2u);
  ASSERT_EQ(latest_checkpoint(volume, "alpha")->prefix, "alpha.odd");

  // Truncate the newest state's array file to half its size; its meta
  // record stays perfectly readable — only the manifest size check can
  // tell the state is torn.
  const std::string victim = array_file_name("alpha.odd", "u");
  const std::uint64_t full = volume.backend().file_size(victim);
  volume.create(victim).write_zeros_at(0, full / 2);

  // The damaged state is no longer a restart candidate...
  const auto latest = latest_checkpoint(volume, "alpha");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->prefix, "alpha.even");
  EXPECT_EQ(latest->meta.sop, 1);
  // ...the verifier flags it, given the record taken while whole...
  for (const auto& record : records) {
    const auto verdict = verify_checkpoint(volume, record);
    EXPECT_EQ(verdict.ok, record.prefix != "alpha.odd");
  }
  // ...and the fsck scan reports it torn with its files reclaimable.
  bool flagged = false;
  for (const auto& state : fsck_scan(volume)) {
    if (state.prefix == "alpha.odd") {
      EXPECT_FALSE(state.committed);
      EXPECT_FALSE(state.reclaimable.empty());
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(CheckpointCatalog, MissingManifestMeansTorn) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  // The meta and every data file of "alpha.odd" are intact; only the
  // commit manifest is gone — exactly a crash between the meta write and
  // publication. The state must not be offered for restart.
  volume.remove(commit_file_name("alpha.odd"));

  EXPECT_EQ(list_checkpoints(volume).size(), 1u);
  ASSERT_TRUE(latest_checkpoint(volume, "alpha").has_value());
  EXPECT_EQ(latest_checkpoint(volume, "alpha")->prefix, "alpha.even");

  bool flagged = false;
  for (const auto& state : fsck_scan(volume)) {
    if (state.prefix == "alpha.odd") {
      EXPECT_FALSE(state.committed);
      EXPECT_FALSE(state.reclaimable.empty());
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);

  // gc reclaims the torn files and leaves the committed state alone.
  EXPECT_GT(gc_torn_states(volume), 0);
  for (const auto& state : fsck_scan(volume)) {
    EXPECT_TRUE(state.committed) << state.prefix;
  }
  EXPECT_EQ(latest_checkpoint(volume, "alpha")->prefix, "alpha.even");
}

TEST(CheckpointCatalog, RemoveCheckpointDecommitsFirst) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 1, CheckpointMode::kDrms);
  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 1u);
  remove_checkpoint(volume, records.front());
  EXPECT_FALSE(volume.exists(commit_file_name("alpha.even")));
  // Nothing left behind for fsck to complain about.
  EXPECT_TRUE(fsck_scan(volume).empty());
}

TEST(CheckpointCatalog, RestartCandidatesAreSopDescending) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 3, CheckpointMode::kDrms);
  write_states(volume, "beta", 2, 1, CheckpointMode::kDrms);

  const auto candidates = restart_candidates(volume, "alpha");
  ASSERT_EQ(candidates.size(), 2u);  // SOP 3 overwrote SOP 1's prefix
  EXPECT_GE(candidates[0].meta.sop, candidates[1].meta.sop);
  EXPECT_EQ(candidates[0].meta.sop, 3);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.meta.app_name, "alpha");
  }
  EXPECT_TRUE(restart_candidates(volume, "gamma").empty());
}

TEST(CheckpointCatalog, LatestSkipsCommittedButCorruptWhenHookSupplied) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  ASSERT_EQ(latest_checkpoint(volume, "alpha")->prefix, "alpha.odd");

  // Flip one payload byte of the newest state: still COMMITTED (manifest
  // and sizes intact), but deep verification rejects it.
  auto f = volume.open(array_file_name("alpha.odd", "u"));
  auto b = f.read_at(64, 1);
  b[0] ^= std::byte{0xff};
  f.write_at(64, b);

  // Without the hook the corrupt state still wins (it is committed)...
  EXPECT_EQ(latest_checkpoint(volume, "alpha")->prefix, "alpha.odd");
  // ...with the hook, selection falls back to the older generation.
  const auto deep = [&](const CheckpointRecord& r) {
    return verify_checkpoint(volume, r, /*deep=*/true).ok;
  };
  const auto chosen = latest_checkpoint(volume, "alpha", "", deep);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->prefix, "alpha.even");
  EXPECT_EQ(chosen->meta.sop, 1);
}

TEST(CheckpointCatalog, ShallowVerifyMissesWhatDeepCatches) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 1, CheckpointMode::kDrms);
  const auto records = list_checkpoints(volume);
  ASSERT_EQ(records.size(), 1u);

  auto f = volume.open(array_file_name("alpha.even", "u"));
  auto b = f.read_at(128, 1);
  b[0] ^= std::byte{0x20};
  f.write_at(128, b);

  // Structural checks (sizes, headers) cannot see a bit flip...
  EXPECT_TRUE(verify_checkpoint(volume, records[0], /*deep=*/false).ok);
  // ...the content pass can.
  EXPECT_FALSE(verify_checkpoint(volume, records[0], /*deep=*/true).ok);
}

TEST(CheckpointCatalog, RetentionKeepsTheNewestK) {
  Volume volume(16);
  // Distinct prefixes so no SOP overwrites an older one: g1..g5.
  DrmsEnv env;
  env.storage = &volume.backend();
  DrmsProgram program("alpha", env, tiny_segment(), 2);
  TaskGroup group(placement_of(2));
  const auto result = group.run([&](TaskContext& ctx) {
    DrmsContext drms(program, ctx);
    drms.initialize();
    const std::array<Index, 3> lo{0, 0, 0};
    const std::array<Index, 3> hi{5, 5, 5};
    DistArray& u = drms.create_array("u", lo, hi);
    drms.distribute(u, DistSpec::block_auto(cube(6), 2,
                                            std::vector<Index>(3, 0)));
    for (int c = 1; c <= 5; ++c) {
      (void)drms.reconfig_checkpoint("alpha.g" + std::to_string(c));
    }
  });
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(restart_candidates(volume, "alpha").size(), 5u);

  EXPECT_EQ(gc_superseded_states(volume, "alpha", "", 2), 3);
  const auto kept = restart_candidates(volume, "alpha");
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].meta.sop, 5);
  EXPECT_EQ(kept[1].meta.sop, 4);
  // Nothing half-deleted for fsck to complain about.
  for (const auto& state : fsck_scan(volume)) {
    EXPECT_TRUE(state.committed) << state.prefix;
  }
  // keep_last_k < 1 clamps to 1: the newest state always survives.
  EXPECT_EQ(gc_superseded_states(volume, "alpha", "", 0), 1);
  ASSERT_EQ(restart_candidates(volume, "alpha").size(), 1u);
  EXPECT_EQ(restart_candidates(volume, "alpha")[0].meta.sop, 5);
  // Idempotent once within budget.
  EXPECT_EQ(gc_superseded_states(volume, "alpha", "", 2), 0);
}

TEST(CheckpointCatalog, RetentionLeavesOtherAppsAlone) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  write_states(volume, "beta", 2, 2, CheckpointMode::kDrms);
  EXPECT_EQ(gc_superseded_states(volume, "alpha", "", 1), 1);
  EXPECT_EQ(restart_candidates(volume, "alpha").size(), 1u);
  EXPECT_EQ(restart_candidates(volume, "beta").size(), 2u);
}

TEST(CheckpointCatalog, PrefixFilterNarrowsTheScan) {
  Volume volume(16);
  write_states(volume, "alpha", 2, 2, CheckpointMode::kDrms);
  write_states(volume, "beta", 2, 2, CheckpointMode::kDrms);
  EXPECT_EQ(list_checkpoints(volume, "alpha").size(), 2u);
  EXPECT_EQ(list_checkpoints(volume, "beta").size(), 2u);
  EXPECT_EQ(list_checkpoints(volume).size(), 4u);
}

}  // namespace
