// Tests for the BT/LU/SP-like applications: inventory accounting against
// the paper's Tables 3-4, distribution invariance of the solver, and
// checkpoint/restart round trips through the full public API.
#include <gtest/gtest.h>

#include "apps/app_spec.hpp"
#include "support/error.hpp"
#include "apps/solver.hpp"
#include "rt/task_group.hpp"
#include "support/units.hpp"
#include "test_helpers.hpp"

namespace {

using namespace drms::apps;
using drms::core::CheckpointMode;
using drms::core::DrmsEnv;
using drms::core::Index;
using Volume = drms::test::TestVolume;
using drms::rt::TaskContext;
using drms::rt::TaskGroup;
using drms::support::kMiB;
using drms::test::placement_of;

TEST(AppSpec, ComponentCountsMatchPaperInventories) {
  EXPECT_EQ(AppSpec::bt().total_components(), 42);
  EXPECT_EQ(AppSpec::lu().total_components(), 17);
  EXPECT_EQ(AppSpec::sp().total_components(), 24);
}

TEST(AppSpec, ClassAArrayBytesMatchTable3) {
  const Index n = grid_size(ProblemClass::kA);
  EXPECT_EQ(AppSpec::bt().arrays_bytes(n), 84 * kMiB);
  EXPECT_EQ(AppSpec::lu().arrays_bytes(n), 34 * kMiB);
  EXPECT_EQ(AppSpec::sp().arrays_bytes(n), 48 * kMiB);
}

TEST(AppSpec, ClassASegmentComponentsMatchTable4Exactly) {
  // Table 4's exact byte counts: the "local sections" values decompose as
  // components x (static halo'd extents) x 8 bytes at the 4-task minimum
  // ({1,2,2} spatial grid), and the totals add the system and private
  // components.
  const Index n = grid_size(ProblemClass::kA);
  struct Row {
    AppSpec spec;
    std::uint64_t locals;
    std::uint64_t total;
  };
  const Row rows[] = {
      {AppSpec::bt(), 25'635'456u, 65'982'468u},
      {AppSpec::lu(), 10'061'824u, 89'169'924u},
      {AppSpec::sp(), 14'648'832u, 55'242'756u},
  };
  for (const auto& row : rows) {
    const auto model = row.spec.segment_model(n);
    EXPECT_EQ(model.static_local_bytes, row.locals) << row.spec.name;
    EXPECT_EQ(model.total(), row.total) << row.spec.name;
    EXPECT_EQ(model.system_bytes, 34'972'228u) << row.spec.name;
  }
}

TEST(AppSpec, ByNameAndUnknown) {
  EXPECT_EQ(AppSpec::by_name("LU").name, "LU");
  EXPECT_THROW((void)AppSpec::by_name("FT"), drms::support::Error);
  EXPECT_EQ(AppSpec::all().size(), 3u);
}

TEST(AppSpec, DistributionShape) {
  const AppSpec spec = AppSpec::bt();
  const auto dist = spec.array_distribution(spec.arrays[0], 16, 8);
  EXPECT_EQ(dist.task_count(), 8);
  EXPECT_TRUE(dist.fully_assigned());
  // Component axis undistributed: every task's assigned section spans all
  // components.
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(dist.assigned(t).range(0).size(), 5);
  }
  // Shadows on spatial axes only.
  EXPECT_GT(dist.mapped_element_total(), dist.assigned_element_total());
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(dist.mapped(t).range(0).size(), 5);
  }
}

struct SolveResult {
  SolverOutcome outcome;
  bool completed = false;
};

SolveResult solve(Volume& volume, const AppSpec& spec, int tasks, Index n,
                  int iterations, const std::string& prefix,
                  const std::string& restart_from, int stop_at = -1,
                  CheckpointMode mode = CheckpointMode::kDrms) {
  SolverOptions options;
  options.spec = spec;
  options.n = n;
  options.iterations = iterations;
  options.checkpoint_every = 5;
  options.prefix = prefix;
  options.stop_at_iteration = stop_at;

  DrmsEnv env;
  env.storage = &volume.backend();
  env.restart_prefix = restart_from;
  env.mode = mode;
  auto program = make_program(options, env, tasks);

  SolveResult result;
  TaskGroup group(placement_of(tasks));
  const auto run = group.run([&](TaskContext& ctx) {
    const SolverOutcome out = run_solver(*program, ctx, options);
    if (ctx.rank() == 0) {
      result.outcome = out;
    }
  });
  result.completed = run.completed;
  return result;
}

class SolverApps : public ::testing::TestWithParam<const char*> {};

TEST_P(SolverApps, FieldIsDistributionInvariant) {
  const AppSpec spec = AppSpec::by_name(GetParam());
  std::uint32_t crc1 = 0;
  for (const int tasks : {1, 4, 6}) {
    Volume volume(16);
    const auto r = solve(volume, spec, tasks, 10, 6, "", "");
    ASSERT_TRUE(r.completed);
    EXPECT_NE(r.outcome.field_crc, 0u);
    if (tasks == 1) {
      crc1 = r.outcome.field_crc;
    } else {
      EXPECT_EQ(r.outcome.field_crc, crc1)
          << spec.name << " on " << tasks << " tasks";
    }
  }
}

TEST_P(SolverApps, ReconfiguredRestartReproducesTheRun) {
  const AppSpec spec = AppSpec::by_name(GetParam());
  constexpr Index kN = 10;
  constexpr int kIters = 12;

  Volume ref_volume(16);
  const auto ref = solve(ref_volume, spec, 4, kN, kIters, "ck", "");
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.outcome.checkpoints_written, 2);  // it=5, it=10

  // Interrupt after the it=10 checkpoint; restart on 6 tasks.
  Volume volume(16);
  (void)solve(volume, spec, 4, kN, kIters, "ck", "", /*stop_at=*/11);
  const auto resumed = solve(volume, spec, 6, kN, kIters, "ck2", "ck");
  ASSERT_TRUE(resumed.completed);
  EXPECT_TRUE(resumed.outcome.restarted);
  EXPECT_EQ(resumed.outcome.start_iteration, 10);
  EXPECT_EQ(resumed.outcome.delta, 2);
  EXPECT_EQ(resumed.outcome.field_crc, ref.outcome.field_crc)
      << spec.name << ": reconfigured restart must be bit-exact";
}

TEST_P(SolverApps, SpmdRestartSameTaskCount) {
  const AppSpec spec = AppSpec::by_name(GetParam());
  constexpr Index kN = 10;
  constexpr int kIters = 12;

  Volume ref_volume(16);
  const auto ref = solve(ref_volume, spec, 4, kN, kIters, "sp", "", -1,
                         CheckpointMode::kSpmd);
  ASSERT_TRUE(ref.completed);

  Volume volume(16);
  (void)solve(volume, spec, 4, kN, kIters, "sp", "", 11,
              CheckpointMode::kSpmd);
  const auto resumed = solve(volume, spec, 4, kN, kIters, "sp2", "sp", -1,
                             CheckpointMode::kSpmd);
  ASSERT_TRUE(resumed.completed);
  EXPECT_TRUE(resumed.outcome.restarted);
  EXPECT_EQ(resumed.outcome.field_crc, ref.outcome.field_crc);
}

INSTANTIATE_TEST_SUITE_P(Apps, SolverApps,
                         ::testing::Values("BT", "LU", "SP"));

TEST(Solver, DrmsStateSizeMatchesModel) {
  const AppSpec spec = AppSpec::sp();
  const Index n = 10;
  Volume volume(16);
  const auto r = solve(volume, spec, 4, n, 6, "ck", "");
  ASSERT_TRUE(r.completed);
  const auto model = spec.segment_model(n);
  EXPECT_EQ(drms::core::drms_state_size(volume, "ck"),
            model.total() + spec.arrays_bytes(n));
}

TEST(Solver, SpmdStateSizeGrowsWithTasks) {
  const AppSpec spec = AppSpec::lu();
  const Index n = 10;
  std::uint64_t size4 = 0;
  for (const int tasks : {4, 8}) {
    Volume volume(16);
    const auto r =
        solve(volume, spec, tasks, n, 6, "sp", "", -1,
              CheckpointMode::kSpmd);
    ASSERT_TRUE(r.completed);
    const std::uint64_t size =
        drms::core::spmd_state_size(volume, "sp");
    if (tasks == 4) {
      size4 = size;
    } else {
      EXPECT_EQ(size, 2 * size4);
    }
  }
}

TEST(Solver, ChkenableVariantFiresOnlyWhenArmed) {
  const AppSpec spec = AppSpec::bt();
  Volume volume(16);
  SolverOptions options;
  options.spec = spec;
  options.n = 8;
  options.iterations = 12;
  options.checkpoint_every = 5;
  options.prefix = "en";
  options.use_chkenable = true;
  options.compute_field_crc = false;
  // Arm once when iteration 5 is reached... iterate: the SOP at it=5 runs
  // before on_iteration(5), so arm at iteration 4 to catch the it=5 SOP?
  // The enabling signal may arrive at any time; here we arm from rank 0 in
  // the iteration-3 hook so the it=5 SOP consumes it.
  DrmsEnv env;
  env.storage = &volume.backend();
  auto program = make_program(options, env, 3);
  options.on_iteration = [&](std::int64_t it, TaskContext& ctx) {
    if (it == 3 && ctx.rank() == 0) {
      program->enable_checkpoint();
    }
  };
  TaskGroup group(placement_of(3));
  int written = 0;
  const auto run = group.run([&](TaskContext& ctx) {
    const auto out = run_solver(*program, ctx, options);
    if (ctx.rank() == 0) {
      written = out.checkpoints_written;
    }
  });
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(written, 1);  // armed once -> exactly one of the SOPs fired
  EXPECT_TRUE(drms::core::checkpoint_exists(volume, "en"));
}

}  // namespace
